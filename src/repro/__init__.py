"""OctopusFS reproduction: a distributed file system with tiered storage.

A faithful Python reimplementation of *OctopusFS* (Kakoulli &
Herodotou, SIGMOD 2017): an HDFS-like distributed file system that
manages memory, SSD, HDD, and remote storage as explicit tiers, with
replication vectors for per-tier replica control, multi-objective
optimizing (MOOP) block placement, tier-aware data retrieval, and
automated replication management — all running over a deterministic
discrete-event cluster simulator.

Quick start::

    from repro import OctopusFileSystem, ReplicationVector
    from repro.cluster import small_cluster_spec

    fs = OctopusFileSystem(small_cluster_spec())
    client = fs.client(on="worker1")
    client.write_file("/demo", data=b"tiered!",
                      rep_vector=ReplicationVector.of(memory=1, hdd=2))
    print(client.get_file_block_locations("/demo"))
"""

from repro.cluster import (
    Cluster,
    ClusterSpec,
    paper_cluster_spec,
    small_cluster_spec,
)
from repro.core import (
    HdfsLocalityRetrievalPolicy,
    MoopPlacementPolicy,
    OctopusRetrievalPolicy,
    OriginalHdfsPolicy,
    ReplicationVector,
    RuleBasedPolicy,
    make_policy,
)
from repro.fs import Client, Master, OctopusFileSystem, UserContext, Worker
from repro.obs import Observability
from repro.sim import (
    ChaosProcess,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    SimulationEngine,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterSpec",
    "paper_cluster_spec",
    "small_cluster_spec",
    "ReplicationVector",
    "MoopPlacementPolicy",
    "OriginalHdfsPolicy",
    "RuleBasedPolicy",
    "OctopusRetrievalPolicy",
    "HdfsLocalityRetrievalPolicy",
    "make_policy",
    "Client",
    "Master",
    "Worker",
    "UserContext",
    "OctopusFileSystem",
    "Observability",
    "SimulationEngine",
    "ChaosProcess",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "__version__",
]
