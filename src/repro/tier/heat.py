"""Exponential-decay access heat with a recency half-life.

The automation loop of Herodotou & Kakoulli's follow-up paper scores
files by *how often* and *how recently* they are accessed. One number
captures both: an exponentially decayed access count. Every access adds
``weight`` to a file's heat; between accesses the heat halves every
``half_life`` simulated seconds. A file read ten times an hour ago and
one read ten times just now therefore rank very differently, while two
files with identical access traces always score identically — heat is a
pure function of the (path, time) access sequence, which is what lets
the policy layer stay deterministic and testable.

The tracker is storage-agnostic: it knows nothing about vectors, tiers,
or the file system. :class:`~repro.tier.engine.TieringEngine` feeds it
from the file system's access listeners and snapshots it once per
policy round.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Heat below this is indistinguishable from cold; ``prune`` drops it.
DEFAULT_PRUNE_FLOOR = 1e-6


class HeatTracker:
    """Per-key exponential-decay heat (half-life in simulated seconds)."""

    __slots__ = ("half_life", "_entries")

    def __init__(self, half_life: float) -> None:
        if half_life <= 0:
            raise ConfigurationError("heat half-life must be positive")
        self.half_life = float(half_life)
        #: key -> (heat at ``last``, last update time)
        self._entries: dict[str, tuple[float, float]] = {}

    def _decayed(self, heat: float, last: float, now: float) -> float:
        if now <= last:
            return heat
        return heat * 2.0 ** (-(now - last) / self.half_life)

    def record(self, key: str, now: float, weight: float = 1.0) -> float:
        """Note one access at simulated time ``now``; returns the new heat."""
        entry = self._entries.get(key)
        if entry is None:
            heat = float(weight)
        else:
            heat = self._decayed(entry[0], entry[1], now) + weight
        self._entries[key] = (heat, now)
        return heat

    def heat(self, key: str, now: float) -> float:
        """The decayed heat of ``key`` as seen at ``now`` (0.0 if unknown)."""
        entry = self._entries.get(key)
        if entry is None:
            return 0.0
        return self._decayed(entry[0], entry[1], now)

    def snapshot(self, now: float) -> dict[str, float]:
        """All tracked keys with their heat decayed to ``now``, sorted.

        The dict iterates in key order so consumers that walk it are
        deterministic regardless of access interleaving.
        """
        return {
            key: self._decayed(heat, last, now)
            for key, (heat, last) in sorted(self._entries.items())
        }

    def forget(self, key: str) -> None:
        """Stop tracking ``key`` (deleted file)."""
        self._entries.pop(key, None)

    def prune(self, now: float, floor: float = DEFAULT_PRUNE_FLOOR) -> int:
        """Drop keys whose heat decayed below ``floor``; returns the count.

        Bounds tracker memory on long runs: a key untouched for
        ``~20 half-lives`` decays below the default floor and is
        reclaimed on the next policy round.
        """
        cold = [
            key
            for key, (heat, last) in self._entries.items()
            if self._decayed(heat, last, now) < floor
        ]
        for key in cold:
            del self._entries[key]
        return len(cold)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HeatTracker tracked={len(self._entries)} t½={self.half_life}>"
