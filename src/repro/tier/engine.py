"""The tiering engine: closes the metrics → decision → replication loop.

A :class:`TieringEngine` attaches to a running
:class:`~repro.fs.system.OctopusFileSystem` the same way the §6
:class:`~repro.core.cache.CacheManager` does — through the file
system's access listeners — but generalizes its promote-after-N counter
into the automation loop of the follow-up paper: per-file
exponential-decay heat (:class:`~repro.tier.heat.HeatTracker`), tier
capacity/latency signals, and a pluggable pure
:class:`~repro.tier.policy.TieringPolicy` that issues replication-
vector changes through the public ``set_replication`` path. The
replication manager then moves the actual replicas asynchronously,
exactly as it would for an application-issued vector change.

Safety properties the engine enforces regardless of policy:

* **Compare-and-set**: every vector change passes the vector observed
  at decision time as ``expected=``; if an application raced in between
  observation and application the change is dropped (counted in
  ``stats.conflicts``), never blindly overwritten.
* **Only its own replicas**: the engine demotes only memory replicas it
  promoted itself (tracked in ``_promoted``); application-pinned memory
  replicas are never stripped, and a demotion never drops the last
  replica of a file.
* **Byte-identical when idle**: a round that applies no actions emits
  no spans, events, or metric instruments, and observation reads
  existing metrics without creating any — so a disabled policy leaves
  every export byte-identical to a run without the engine (the
  differential suite's oracle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.replication_vector import UNSPECIFIED, ReplicationVector
from repro.errors import (
    ConfigurationError,
    FileSystemError,
    PlacementError,
    StaleVectorError,
)
from repro.sim.periodic import PeriodicProcess
from repro.tier.heat import HeatTracker
from repro.tier.policy import (
    DEMOTE,
    PROMOTE,
    FileObservation,
    ObservedState,
    StaticVectorPolicy,
    TierObservation,
    TieringAction,
    TieringPolicy,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.system import OctopusFileSystem

DEFAULT_INTERVAL = 10.0
DEFAULT_HALF_LIFE = 30.0


@dataclass
class TieringStats:
    rounds: int = 0
    actions: int = 0
    promotions: int = 0
    demotions: int = 0
    #: Actions dropped because the vector changed under us (CAS lost).
    conflicts: int = 0
    #: Actions dropped on file-system or placement errors.
    errors: int = 0
    #: Actions skipped as no-ops (already resident, nothing to demote).
    skipped: int = 0


@dataclass(frozen=True)
class Decision:
    """One applied/attempted action, kept for tests and debugging."""

    time: float
    action: TieringAction
    outcome: str  # "applied" | "conflict" | "error" | "skipped"
    detail: str = ""


class TieringEngine:
    """Periodic policy rounds over one file system."""

    def __init__(
        self,
        system: "OctopusFileSystem",
        policy: TieringPolicy | None = None,
        interval: float = DEFAULT_INTERVAL,
        half_life: float = DEFAULT_HALF_LIFE,
        memory_tier: str = "MEMORY",
        decision_log_limit: int = 1000,
        monitor=None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("tiering interval must be positive")
        if memory_tier not in system.cluster.tiers:
            raise ConfigurationError(f"no tier named {memory_tier!r}")
        self.system = system
        self.policy = policy or StaticVectorPolicy()
        #: Optional :class:`repro.obs.slo.SloMonitor`; when set, each
        #: observation carries its live burn rates and firing alerts so
        #: policies can react to SLO pressure, not just heat.
        self.monitor = monitor
        self.interval = float(interval)
        self.memory_tier = memory_tier
        self.heat = HeatTracker(half_life)
        self.stats = TieringStats()
        self.decision_log: list[Decision] = []
        self.decision_log_limit = decision_log_limit
        #: path -> simulated time the engine added its memory replica.
        self._promoted: dict[str, float] = {}
        #: path -> simulated time the engine last removed one.
        self._last_demoted: dict[str, float] = {}
        self._attached = False
        self._periodic: PeriodicProcess | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self) -> "TieringEngine":
        """Subscribe to access notifications (heat signal source)."""
        if self._attached:
            raise ConfigurationError("tiering engine already attached")
        self.system.access_listeners.append(self.on_access)
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.system.access_listeners.remove(self.on_access)
            self._attached = False

    def start(self) -> "TieringEngine":
        """Run policy rounds as a periodic engine process.

        Call :meth:`stop` before draining the engine with a bare
        ``engine.run()`` — same contract as ``fs.stop_services()``.
        """
        if self._periodic is not None and self._periodic.running:
            raise ConfigurationError("tiering engine already running")
        if not self._attached:
            self.attach()
        self._periodic = PeriodicProcess(
            self.system.engine, self.run_round, self.interval, name="tiering"
        ).start()
        return self

    def stop(self) -> None:
        if self._periodic is not None:
            self._periodic.stop()

    @property
    def running(self) -> bool:
        return self._periodic is not None and self._periodic.running

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def on_access(self, path: str) -> None:
        self.heat.record(path, self.system.engine.now)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self) -> ObservedState:
        """Assemble the frozen policy input for this round.

        Reads the namespace and metrics without side effects on either:
        deleted files are forgotten, and the latency lookup uses the
        registry's non-creating ``find`` so observation never mints an
        instrument (that would break the differential byte-identity
        oracle).
        """
        now = self.system.engine.now
        files = []
        for path, heat in self.heat.snapshot(now).items():
            master = self.system.master_for(path)
            try:
                status = master.get_status(path)
            except FileSystemError:
                self.heat.forget(path)
                self._promoted.pop(path, None)
                self._last_demoted.pop(path, None)
                continue
            if status.is_directory:
                self.heat.forget(path)
                continue
            memory_replicas = status.rep_vector.count(self.memory_tier)
            if path in self._promoted and memory_replicas == 0:
                # An application rewrote the vector out from under us;
                # the replica is no longer ours to manage.
                self._promoted.pop(path)
            files.append(
                FileObservation(
                    path=path,
                    heat=heat,
                    length=status.length,
                    memory_replicas=memory_replicas,
                    policy_memory_replicas=1 if path in self._promoted else 0,
                    under_construction=status.under_construction,
                    last_promoted=self._promoted.get(path, -math.inf),
                    last_demoted=self._last_demoted.get(path, -math.inf),
                )
            )
        tiers = tuple(
            TierObservation(
                name=stats.tier_name,
                total_capacity=stats.total_capacity,
                used=stats.used,
                remaining=stats.remaining,
                avg_read_throughput=stats.avg_read_throughput,
                avg_write_throughput=stats.avg_write_throughput,
                active_connections=stats.active_connections,
            )
            for stats in self.system.master.get_storage_tier_reports()
        )
        read_p99 = None
        histogram = self.system.obs.metrics.find("histogram", "block_read_seconds")
        if histogram is not None:
            read_p99 = histogram.quantile(0.99)
        burn_rates: tuple = ()
        alerts_firing: tuple = ()
        if self.monitor is not None:
            burn_rates = self.monitor.burn_snapshot()
            alerts_firing = self.monitor.firing()
        return ObservedState(
            now=now,
            half_life=self.heat.half_life,
            files=tuple(files),
            tiers=tiers,
            read_p99=read_p99,
            burn_rates=burn_rates,
            alerts_firing=alerts_firing,
        )

    # ------------------------------------------------------------------
    # The policy round
    # ------------------------------------------------------------------
    def run_round(self) -> list[Decision]:
        """One observe → decide → apply pass; returns its decisions."""
        try:
            return self._run_round()
        except Exception as exc:
            # The policy engine is itself an actor that can cause
            # incidents; a crashed round is flight-recorder material.
            self.system.obs.recorder.on_exception("tiering-engine", exc)
            raise

    def _run_round(self) -> list[Decision]:
        state = self.observe()
        actions = self.policy.decide(state)
        self.stats.rounds += 1
        decisions = [self._apply(action, state.now) for action in actions]
        applied = [d for d in decisions if d.outcome == "applied"]
        obs = self.system.obs
        if obs.enabled and decisions:
            # Emission is gated on the round having *decided something*:
            # an idle round (the disabled/static policy, every round of
            # an infinite-hysteresis policy) leaves the exports
            # untouched, which the differential suite depends on.
            span = obs.tracer.start_span(
                "tier.round",
                policy=self.policy.name,
                decided=len(decisions),
                applied=len(applied),
            )
            ledger_on = obs.ledger.enabled
            for decision in decisions:
                span.event(
                    f"tier.{decision.action.kind}",
                    path=decision.action.path,
                    tier=decision.action.tier,
                    heat=round(decision.action.heat, 6),
                    outcome=decision.outcome,
                )
                obs.metrics.counter(
                    "tier_actions_total",
                    kind=decision.action.kind,
                    outcome=decision.outcome,
                ).inc()
                if decision.outcome == "conflict":
                    # Lost CAS races are attributable, not silent.
                    obs.metrics.counter("tiering_cas_conflicts_total").inc()
                if ledger_on:
                    obs.ledger.on_tiering(
                        path=decision.action.path,
                        kind=decision.action.kind,
                        tier=decision.action.tier,
                        heat=decision.action.heat,
                        outcome=decision.outcome,
                        detail=decision.detail,
                        policy=self.policy,
                        round_number=self.stats.rounds,
                        span=span,
                    )
            obs.metrics.gauge("tier_policy_cached_files").set(len(self._promoted))
            span.end()
        self.heat.prune(state.now)
        return decisions

    def run_rounds(self, rounds: int) -> list[Decision]:
        """Run ``rounds`` back-to-back policy rounds (tests/scripts)."""
        decisions = []
        for _ in range(rounds):
            decisions.extend(self.run_round())
        return decisions

    # ------------------------------------------------------------------
    # Applying actions
    # ------------------------------------------------------------------
    def _record(self, decision: Decision) -> Decision:
        self.stats.actions += 1
        if decision.outcome == "applied":
            if decision.action.kind == PROMOTE:
                self.stats.promotions += 1
            else:
                self.stats.demotions += 1
        elif decision.outcome == "conflict":
            self.stats.conflicts += 1
        elif decision.outcome == "error":
            self.stats.errors += 1
        else:
            self.stats.skipped += 1
        self.decision_log.append(decision)
        if len(self.decision_log) > self.decision_log_limit:
            del self.decision_log[: -self.decision_log_limit]
        return decision

    def _apply(self, action: TieringAction, now: float) -> Decision:
        try:
            master = self.system.master_for(action.path)
            observed = master.get_status(action.path).rep_vector
            if action.kind == PROMOTE:
                return self._record(self._promote(action, observed, now))
            if action.kind == DEMOTE:
                return self._record(self._demote(action, observed, now))
            return self._record(
                Decision(now, action, "error", f"unknown kind {action.kind!r}")
            )
        except StaleVectorError as exc:
            return self._record(Decision(now, action, "conflict", str(exc)))
        except (FileSystemError, PlacementError) as exc:
            return self._record(Decision(now, action, "error", str(exc)))

    def _promote(
        self, action: TieringAction, observed: ReplicationVector, now: float
    ) -> Decision:
        if observed.count(action.tier) >= 1:
            # Already resident (application pin or a racing promotion):
            # nothing to move, and not ours to remove later.
            return Decision(now, action, "skipped", "already resident")
        self.system.client().set_replication(
            action.path, observed.add(action.tier), expected=observed
        )
        self._promoted[action.path] = now
        return Decision(now, action, "applied")

    def _demote(
        self, action: TieringAction, observed: ReplicationVector, now: float
    ) -> Decision:
        if action.path not in self._promoted:
            return Decision(now, action, "skipped", "not promoted by policy")
        if observed.count(action.tier) < 1:
            self._promoted.pop(action.path)
            return Decision(now, action, "skipped", "replica already gone")
        demoted = observed.add(action.tier, -1)
        if demoted.total_replicas == 0:
            # Never leave a file with no replicas at all.
            demoted = demoted.add(UNSPECIFIED)
        self.system.client().set_replication(
            action.path, demoted, expected=observed
        )
        self._promoted.pop(action.path)
        self._last_demoted[action.path] = now
        return Decision(now, action, "applied")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TieringEngine policy={self.policy.name!r} "
            f"tracked={len(self.heat)} cached={len(self._promoted)}>"
        )
