"""Adaptive tiered-storage management (the automation-loop follow-up).

``repro.tier`` closes the loop the ROADMAP calls "workload-driven
automatic up/down-tiering": access signals feed a
:class:`~repro.tier.heat.HeatTracker`, a periodic
:class:`~repro.tier.engine.TieringEngine` snapshots heat plus tier
reports into a frozen :class:`~repro.tier.policy.ObservedState`, and a
pure :class:`~repro.tier.policy.TieringPolicy` decides which files gain
or lose memory replicas through the public ``set_replication`` path.

>>> from repro import OctopusFileSystem
>>> from repro.cluster import small_cluster_spec
>>> from repro.tier import DecayHeatPolicy, TieringEngine
>>> fs = OctopusFileSystem(small_cluster_spec())
>>> engine = TieringEngine(fs, DecayHeatPolicy(), interval=5.0).attach()
>>> # ... run a workload; engine.start() for periodic rounds, or
>>> # engine.run_round() to step the policy by hand ...

See ``docs/TIERING.md`` for the policy model and evaluation results.
"""

from repro.tier.engine import Decision, TieringEngine, TieringStats
from repro.tier.heat import HeatTracker
from repro.tier.policy import (
    DEMOTE,
    PROMOTE,
    DecayHeatPolicy,
    FileObservation,
    ObservedState,
    StaticVectorPolicy,
    TierObservation,
    TieringAction,
    TieringPolicy,
)

__all__ = [
    "DecayHeatPolicy",
    "Decision",
    "DEMOTE",
    "FileObservation",
    "HeatTracker",
    "ObservedState",
    "PROMOTE",
    "StaticVectorPolicy",
    "TierObservation",
    "TieringAction",
    "TieringEngine",
    "TieringPolicy",
    "TieringStats",
]
