"""Tiering policies: pure decisions over an observed heat state.

The policy layer is deliberately split from the engine that hosts it
(:mod:`repro.tier.engine`). A :class:`TieringPolicy` is a *pure
function* from an :class:`ObservedState` — the frozen snapshot the
engine assembles each round from the heat tracker, the namespace, and
the tier reports — to a list of :class:`TieringAction`. Policies hold
no mutable state of their own; all hysteresis memory (when was this
file last promoted or demoted?) lives *in the state*, maintained by the
engine. That split is what the property-test harness leans on: the same
state must always yield the same actions, and invariants like "the
movement budget is never exceeded" or "no file is promoted and demoted
within one half-life" can be checked against the state alone.

Two policies ship:

* :class:`StaticVectorPolicy` — the no-op baseline. Files keep whatever
  vector the application gave them; the differential suite proves that
  running the engine with this policy leaves metrics and trace exports
  byte-identical to not running the engine at all.
* :class:`DecayHeatPolicy` — the online policy from the automation
  paper's mold: promote files whose exponential-decay heat crosses
  ``promote_heat``, demote policy-cached files that cooled below
  ``demote_heat``, with promotion/demotion hysteresis (``min_residency``
  and ``cooldown``, both defaulting to one heat half-life) and a
  per-round ``movement_budget`` so tier bandwidth is never swamped.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

PROMOTE = "promote"
DEMOTE = "demote"


@dataclass(frozen=True)
class TieringAction:
    """One replication-vector change a policy wants applied."""

    path: str
    kind: str  # PROMOTE or DEMOTE
    tier: str
    heat: float


@dataclass(frozen=True)
class FileObservation:
    """What one round knows about one tracked file."""

    path: str
    heat: float
    length: int
    memory_replicas: int  # total replicas in the memory tier
    policy_memory_replicas: int  # of those, how many this engine added
    under_construction: bool = False
    #: Simulated time of the engine's last promotion/demotion of this
    #: file; -inf when it never happened (so hysteresis gates pass).
    last_promoted: float = -math.inf
    last_demoted: float = -math.inf


@dataclass(frozen=True)
class TierObservation:
    """Capacity and load of one storage tier, from the tier reports."""

    name: str
    total_capacity: int
    used: int
    remaining: int
    avg_read_throughput: float = 0.0
    avg_write_throughput: float = 0.0
    active_connections: int = 0


@dataclass(frozen=True)
class ObservedState:
    """The full, frozen input of one policy round."""

    now: float
    half_life: float
    files: tuple[FileObservation, ...] = ()
    tiers: tuple[TierObservation, ...] = ()
    #: p99 of ``block_read_seconds`` at observation time (None when the
    #: metrics registry is disabled or saw no reads yet).
    read_p99: float | None = None
    #: Long-window error-budget burn rates from an attached
    #: :class:`repro.obs.slo.SloMonitor` — ``("rule" or "rule/group",
    #: burn)`` pairs in deterministic order; empty with no monitor.
    burn_rates: tuple[tuple[str, float], ...] = ()
    #: Alert keys currently firing on the attached monitor(s).
    alerts_firing: tuple[str, ...] = ()

    def tier(self, name: str) -> TierObservation | None:
        for tier in self.tiers:
            if tier.name == name:
                return tier
        return None

    def burn_rate(self, rule: str) -> float | None:
        """The burn for one rule key, or ``None`` if not tracked."""
        for key, burn in self.burn_rates:
            if key == rule:
                return burn
        return None


class TieringPolicy(ABC):
    """A pure decision function over one observed state."""

    name = "abstract"

    @abstractmethod
    def decide(self, state: ObservedState) -> list[TieringAction]:
        """Actions to apply this round. MUST be pure: no mutation of
        ``self`` or ``state``, same state → same actions."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class StaticVectorPolicy(TieringPolicy):
    """The baseline: never touch any vector."""

    name = "static"

    def decide(self, state: ObservedState) -> list[TieringAction]:
        return []


@dataclass(frozen=True)
class DecayHeatPolicy(TieringPolicy):
    """Decay-heat thresholds with hysteresis and a movement budget.

    ``promote_heat`` / ``demote_heat`` are the two thresholds of the
    hysteresis band: a file must be strictly hotter than the first to
    gain a memory replica and at least as cold as the second to lose
    the one the policy added. Keeping ``demote_heat`` well below
    ``promote_heat`` is the first anti-flapping defence; the second is
    temporal: a freshly promoted file is immune to demotion for
    ``min_residency`` simulated seconds and a freshly demoted one
    cannot re-promote within ``cooldown``. Both default to one heat
    half-life — the scale on which heat itself changes — which is
    exactly the invariant the property suite checks ("no file promoted
    and demoted within one half-life"). Setting ``promote_heat`` to
    ``math.inf`` yields a policy that can never act: the differential
    suite's infinite-hysteresis oracle.

    ``movement_budget`` caps actions per round so replica movement
    never swamps tier bandwidth; coldest demotions are preferred, then
    hottest promotions, so the budget goes where it pays most.
    ``headroom`` reserves a fraction of memory-tier capacity the policy
    will not fill (placement needs slack for application writes).
    """

    promote_heat: float = 2.0
    demote_heat: float = 0.5
    movement_budget: int = 4
    min_residency: float | None = None
    cooldown: float | None = None
    memory_tier: str = "MEMORY"
    headroom: float = 0.1
    name: str = field(default="decay-heat", init=False)

    def __post_init__(self) -> None:
        if self.demote_heat > self.promote_heat:
            raise ConfigurationError(
                "demote_heat must not exceed promote_heat "
                f"({self.demote_heat} > {self.promote_heat})"
            )
        if self.movement_budget < 0:
            raise ConfigurationError("movement budget must be >= 0")
        for knob in ("min_residency", "cooldown", "headroom"):
            value = getattr(self, knob)
            if value is not None and value < 0:
                raise ConfigurationError(f"{knob} must be >= 0")
        if self.headroom >= 1.0:
            raise ConfigurationError("headroom must be < 1.0")

    def decide(self, state: ObservedState) -> list[TieringAction]:
        min_residency = (
            state.half_life if self.min_residency is None else self.min_residency
        )
        cooldown = state.half_life if self.cooldown is None else self.cooldown

        # Demotions first: coldest policy-cached files, and the bytes
        # they free count toward this round's promotion capacity.
        demotions = sorted(
            (
                f
                for f in state.files
                if f.policy_memory_replicas > 0
                and f.heat <= self.demote_heat
                and state.now - f.last_promoted >= min_residency
            ),
            key=lambda f: (f.heat, f.path),
        )

        memory = state.tier(self.memory_tier)
        if memory is None:
            budget_bytes = 0.0
        else:
            reserve = self.headroom * memory.total_capacity
            budget_bytes = memory.remaining - reserve
        budget_bytes += sum(f.length for f in demotions)

        promotions = []
        candidates = sorted(
            (
                f
                for f in state.files
                if f.memory_replicas == 0
                and not f.under_construction
                and f.heat > self.promote_heat
                and state.now - f.last_demoted >= cooldown
            ),
            key=lambda f: (-f.heat, f.path),
        )
        for f in candidates:
            if f.length <= budget_bytes:
                promotions.append(f)
                budget_bytes -= f.length

        actions = [
            TieringAction(f.path, DEMOTE, self.memory_tier, f.heat)
            for f in demotions
        ] + [
            TieringAction(f.path, PROMOTE, self.memory_tier, f.heat)
            for f in promotions
        ]
        return actions[: self.movement_budget]
