"""Live invariant health checks, surfaced as alerts.

The invariant sweeps in :mod:`repro.fs.invariants` were built for the
*end* of a run — tests and chaos harnesses assert them after the engine
drains. :class:`HealthMonitor` runs the mid-run-safe subset
(:data:`repro.fs.invariants.LIVE_CHECKS`: accounting and replication;
readability issues real reads and stays offline) on a periodic
sim-time tick and turns persistent violations into ``health.alert``
events on the same :class:`~repro.obs.slo.AlertSink` the SLO monitor
uses — one combined, deterministically ordered timeline.

Replication violations are *expected* transiently: a fault kills a
replica, the replication monitor notices, repair traffic flows, and the
vector balances again. ``grace_ticks`` encodes that: a category must be
in violation for that many consecutive ticks before it fires, so the
alert means "stuck", not "healing". Accounting violations are never
expected; the default fires them on the first tick they appear.

Violation detail strings are sanitized before they reach the timeline
(block ids are process-global counters, so two identical seeded runs in
one process would otherwise disagree) — the alert carries stable text
plus the violation count, keeping timelines byte-identical across
repeated runs.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigurationError
from repro.obs.slo import AlertSink
from repro.sim.periodic import PeriodicProcess

# NOTE: repro.fs.invariants is imported lazily inside the monitor —
# repro.obs must stay importable before repro.fs (the cluster module
# imports the facade from here during its own initialization).

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.system import OctopusFileSystem

__all__ = ["HealthMonitor", "sanitize_violation"]

#: Process-global identifiers that vary between repeated runs in one
#: interpreter; each is rewritten to a stable placeholder.
_BLOCK_ID = re.compile(r"\bblock (\d+)\b")

#: How many violation strings an alert carries verbatim.
_DETAIL_LIMIT = 3


def sanitize_violation(violation: str) -> str:
    """Rewrite run-varying identifiers to stable placeholders."""
    return _BLOCK_ID.sub("block <id>", violation)


class HealthMonitor:
    """Periodic live invariant sweep with per-category alert state.

    Same lifecycle contract as the SLO monitor and the tiering engine:
    :meth:`start` after construction, :meth:`stop` before draining the
    engine with a bare ``engine.run()``.
    """

    def __init__(
        self,
        system: "OctopusFileSystem",
        interval: float = 5.0,
        checks: Iterable[str] | None = None,
        grace_ticks: int | dict[str, int] | None = None,
        sink: AlertSink | None = None,
        name: str = "health-monitor",
    ) -> None:
        from repro.fs.invariants import LIVE_CHECKS

        self.system = system
        self.interval = float(interval)
        self.checks = tuple(checks) if checks is not None else LIVE_CHECKS
        if not self.checks:
            raise ConfigurationError("HealthMonitor needs at least one check")
        # Replication heals on its own; give repair one tick by default.
        defaults = {
            check: (2 if check == "replication" else 1)
            for check in self.checks
        }
        if isinstance(grace_ticks, int):
            defaults = {check: grace_ticks for check in self.checks}
        elif grace_ticks:
            defaults.update(grace_ticks)
        if any(v < 1 for v in defaults.values()):
            raise ConfigurationError("grace_ticks must be >= 1")
        self.grace_ticks = defaults
        self.sink = sink if sink is not None else AlertSink(system.obs)
        self.name = name
        self.ticks = 0
        self._streak: dict[str, int] = {check: 0 for check in self.checks}
        self._firing: dict[str, bool] = {check: False for check in self.checks}
        #: Sanitized findings of the most recent sweep, per check —
        #: what ``report --json`` shows without waiting for an alert.
        self.last_sweep: dict[str, dict] = {}
        self._periodic: PeriodicProcess | None = None

    @property
    def running(self) -> bool:
        return self._periodic is not None and self._periodic.running

    def start(self, initial_delay: float | None = None) -> "HealthMonitor":
        if self.running:
            raise ConfigurationError(f"monitor {self.name!r} already running")
        self._periodic = PeriodicProcess(
            self.system.engine,
            self.tick,
            self.interval,
            name=self.name,
            initial_delay=initial_delay,
        ).start()
        return self

    def stop(self) -> None:
        if self._periodic is not None:
            self._periodic.stop()
            self._periodic = None

    def tick(self) -> None:
        """One sweep: update per-category streaks, fire/resolve alerts."""
        from repro.fs.invariants import collect_violations

        self.ticks += 1
        violations = collect_violations(self.system, self.checks)
        obs = self.system.obs
        sweep_time = obs.now()
        for check in self.checks:
            found = violations[check]
            if found:
                self._streak[check] += 1
                if (
                    not self._firing[check]
                    and self._streak[check] >= self.grace_ticks[check]
                ):
                    self._firing[check] = True
                    details = sorted(sanitize_violation(v) for v in found)
                    self.sink.emit(
                        "health",
                        f"invariant:{check}",
                        "firing",
                        "page",
                        violations=len(found),
                        persisted_ticks=self._streak[check],
                        sample=details[:_DETAIL_LIMIT],
                    )
            else:
                self._streak[check] = 0
                if self._firing[check]:
                    self._firing[check] = False
                    self.sink.emit(
                        "health",
                        f"invariant:{check}",
                        "resolved",
                        "page",
                        violations=0,
                    )
        for check in self.checks:
            found = violations[check]
            self.last_sweep[check] = {
                "time": sweep_time,
                "violations": len(found),
                "sample": sorted(
                    sanitize_violation(v) for v in found
                )[:_DETAIL_LIMIT],
                "streak": self._streak[check],
                "firing": self._firing[check],
            }
        obs.recorder.on_health(
            {
                "time": sweep_time,
                "violations": {
                    check: len(violations[check]) for check in self.checks
                },
                "firing": list(self.firing()),
            }
        )

    def firing(self) -> tuple[str, ...]:
        """Invariant categories currently in alert."""
        return tuple(
            f"invariant:{check}"
            for check in self.checks
            if self._firing[check]
        )

    def summary(self) -> dict:
        """The health overview for ``report --json``."""
        return {
            "ticks": self.ticks,
            "checks": list(self.checks),
            "alerts_firing": list(self.firing()),
            "alerts_emitted": len(
                [r for r in self.sink.timeline if r["source"] == "health"]
            ),
        }

    def report(self) -> dict:
        """Per-check state for ``report --json``'s ``health`` section.

        Carries the last sweep's sanitized findings plus the grace
        bookkeeping, so health is inspectable without a live monitor
        attached — construct a monitor, call :meth:`tick` once, read
        this.
        """
        return {
            **self.summary(),
            "grace_ticks": dict(self.grace_ticks),
            "checks": {
                check: self.last_sweep.get(
                    check,
                    {
                        "time": None,
                        "violations": None,
                        "sample": [],
                        "streak": 0,
                        "firing": False,
                    },
                )
                for check in self.checks
            },
        }
