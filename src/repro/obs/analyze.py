"""Trace analytics: JSONL reader, span DAG, critical paths, stragglers.

The tracing layer (:mod:`repro.obs.tracing`) emits a flat stream of
span/event records; this module turns that firehose into answers:

* :func:`read_trace_file` / :func:`iter_trace_records` — a validating,
  streaming-friendly JSONL reader that tolerates truncated or garbage
  lines (``on_error="skip"``) without losing the rest of the trace;
* :class:`Trace` — the reconstructed span DAG: spans indexed by id,
  children linked, request roots identified;
* :func:`critical_path` — for one request, the contiguous chain of
  segments (span, start, end) that determined its duration, so the
  summed segment durations equal the request duration exactly;
* :func:`aggregate_spans` — flame-style totals per span name (and per
  tier): count, total time, *self* time (duration minus the union of
  child intervals), and exact latency percentiles;
* :func:`stragglers` — the slowest-k spans with their ancestry chain
  and how many block-transfer flows were in flight alongside them;
* :func:`analyze_trace` — all of the above as one deterministic,
  JSON-serializable report (what ``repro analyze --json`` prints).

Everything here is a pure function of the record stream: analyzing the
byte-identical traces of two identically-seeded runs yields
byte-identical reports.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

from repro.obs.export import schema_version_problem, validate_trace_records


class TraceParseError(ValueError):
    """A malformed trace line under ``on_error="raise"``."""


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def iter_trace_records(
    lines: Iterable[str],
    on_error: str = "raise",
    problems: list[str] | None = None,
) -> Iterator[dict]:
    """Yield trace records from JSONL lines, one dict per good line.

    ``on_error`` is ``"raise"`` (default) or ``"skip"``; with
    ``"skip"``, malformed lines — garbage, truncation mid-object,
    non-object JSON — are dropped and described in ``problems`` (when a
    list is passed) so callers can report without aborting. Blank lines
    are ignored either way.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', not {on_error!r}")
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            message = f"line {lineno}: invalid JSON ({exc})"
            if on_error == "raise":
                raise TraceParseError(message) from None
            if problems is not None:
                problems.append(message)
            continue
        if not isinstance(record, dict):
            message = f"line {lineno}: not a JSON object"
            if on_error == "raise":
                raise TraceParseError(message)
            if problems is not None:
                problems.append(message)
            continue
        yield record


def read_trace_file(path: str, on_error: str = "raise") -> "Trace":
    """Read a JSONL trace file (optionally ``.gz``) into a :class:`Trace`.

    A path ending in ``.gz`` is transparently gunzipped, so scaled-run
    artifacts written with ``--trace-out trace.jsonl.gz`` analyze the
    same as plain files.
    """
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return read_trace(handle, on_error=on_error)
    with open(path, "r", encoding="utf-8") as handle:
        return read_trace(handle, on_error=on_error)


def read_trace(lines: Iterable[str] | IO, on_error: str = "raise") -> "Trace":
    """Build a :class:`Trace` from JSONL lines (any string iterable).

    A leading ``schema_version`` header line (written by
    :func:`repro.obs.export.write_jsonl`) is checked and stripped; a
    header from a newer major version raises :class:`TraceParseError`
    with a clear upgrade message rather than surfacing as record-level
    schema noise. Headerless streams (in-memory records, pre-versioning
    files) read unchanged.
    """
    problems: list[str] = []
    records = list(iter_trace_records(lines, on_error=on_error,
                                      problems=problems))
    if records and records[0].get("kind") == "header":
        header = records.pop(0)
        problem = schema_version_problem(header.get("schema_version"))
        if problem:
            raise TraceParseError(problem)
    return Trace(records, parse_problems=problems)


# ----------------------------------------------------------------------
# The span DAG
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One finished span with its children linked in."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def span_id(self) -> int:
        return self.record["span_id"]

    @property
    def trace_id(self) -> int:
        return self.record["trace_id"]

    @property
    def parent_id(self) -> int | None:
        return self.record["parent_id"]

    @property
    def start(self) -> float:
        return self.record["start"]

    @property
    def end(self) -> float:
        return self.record["end"]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def status(self) -> str:
        return self.record["status"]

    @property
    def attrs(self) -> dict:
        return self.record.get("attrs", {})

    def tier_label(self) -> str | None:
        """The span's tier attribution: ``tier`` or joined ``tiers``."""
        attrs = self.attrs
        if "tier" in attrs and attrs["tier"] is not None:
            return str(attrs["tier"])
        tiers = attrs.get("tiers")
        if tiers:
            return "+".join(str(t) for t in tiers)
        return None


class Trace:
    """The reconstructed span DAG of one exported record stream."""

    def __init__(
        self, records: Iterable[dict], parse_problems: list[str] | None = None
    ) -> None:
        self.records = list(records)
        #: Reader-level problems (bad lines) + schema-level problems.
        self.problems = list(parse_problems or [])
        self.problems.extend(validate_trace_records(self.records))
        self.spans: dict[int, SpanNode] = {}
        self.events: list[dict] = []
        for record in self.records:
            if record.get("kind") == "span" and "span_id" in record:
                self.spans[record["span_id"]] = SpanNode(record)
            elif record.get("kind") == "event":
                self.events.append(record)
        self.roots: list[SpanNode] = []
        for node in self.spans.values():
            parent = (
                self.spans.get(node.parent_id)
                if node.parent_id is not None
                else None
            )
            if parent is None:
                self.roots.append(node)
            else:
                parent.children.append(node)
        for node in self.spans.values():
            node.children.sort(key=lambda c: (c.start, c.span_id))
        self.roots.sort(key=lambda r: (r.start, r.span_id))

    def requests(self) -> list[SpanNode]:
        """Root spans, i.e. one per traced request, in start order."""
        return self.roots

    def ancestry(self, node: SpanNode) -> list[SpanNode]:
        """Root-to-node chain of spans (inclusive)."""
        chain = [node]
        seen = {node.span_id}
        while chain[-1].parent_id is not None:
            parent = self.spans.get(chain[-1].parent_id)
            if parent is None or parent.span_id in seen:
                break
            seen.add(parent.span_id)
            chain.append(parent)
        chain.reverse()
        return chain

    def flow_spans(self) -> list[SpanNode]:
        return [s for s in self.spans.values() if s.name == "flow.transfer"]


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
@dataclass
class Segment:
    """One critical-path piece: ``span`` was the limiting work on
    ``[start, end]`` (no child of it covered that stretch)."""

    span: SpanNode
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def critical_path(root: SpanNode) -> list[Segment]:
    """The chain of segments that determined ``root``'s duration.

    Walks the span tree bottom-up from the request's end: each stretch
    of time is attributed to the deepest span working on it, preferring
    the child that *finished last* (the classic last-returning-child
    rule). The returned segments partition ``[root.start, root.end]``
    contiguously, so their summed durations equal the request duration.
    """
    segments: list[Segment] = []

    def attribute(span: SpanNode, lo: float, hi: float) -> None:
        cursor = hi
        # Children that end last bound the tail of the interval.
        for child in sorted(
            span.children, key=lambda c: (c.end, c.span_id), reverse=True
        ):
            if cursor <= lo:
                break
            child_end = min(child.end, cursor)
            if child_end <= lo:
                break  # sorted by end: no later child can reach past lo
            child_start = max(child.start, lo)
            if child_end <= child_start:
                continue
            if cursor > child_end:
                segments.append(Segment(span, child_end, cursor))
            attribute(child, child_start, child_end)
            cursor = child_start
        if cursor > lo:
            segments.append(Segment(span, lo, cursor))

    attribute(root, root.start, root.end)
    if not segments:  # zero-duration request
        segments.append(Segment(root, root.start, root.end))
    segments.reverse()  # chronological order
    return segments


def critical_path_report(trace: Trace, root: SpanNode) -> dict:
    """One request's critical path as a JSON-serializable dict."""
    segments = critical_path(root)
    by_span: dict[str, float] = {}
    for segment in segments:
        key = segment.span.name
        tier = segment.span.tier_label()
        if tier is not None:
            key = f"{key}[{tier}]"
        by_span[key] = by_span.get(key, 0.0) + segment.duration
    dominant = max(sorted(by_span), key=lambda k: by_span[k]) if by_span else None
    return {
        "trace_id": root.trace_id,
        "root": root.name,
        "status": root.status,
        "start": root.start,
        "end": root.end,
        "duration": root.duration,
        "segments": [
            {
                "span_id": segment.span.span_id,
                "name": segment.span.name,
                "tier": segment.span.tier_label(),
                "start": segment.start,
                "end": segment.end,
                "duration": segment.duration,
            }
            for segment in segments
        ],
        "by_span": {k: by_span[k] for k in sorted(by_span)},
        "dominant": dominant,
    }


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def percentile(sorted_values: list[float], q: float) -> float | None:
    """Exact ``q``-percentile of an ascending list (linear interpolation).

    ``None`` on empty input; the single value on single-element input.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    fraction = position - lower
    if lower + 1 >= len(sorted_values):
        return sorted_values[-1]
    return (
        sorted_values[lower] * (1.0 - fraction)
        + sorted_values[lower + 1] * fraction
    )


def _covered_by_children(node: SpanNode) -> float:
    """Total length of the union of child intervals, clipped to node."""
    intervals = sorted(
        (max(c.start, node.start), min(c.end, node.end))
        for c in node.children
    )
    covered = 0.0
    cursor = node.start
    for start, end in intervals:
        if end <= cursor:
            continue
        covered += end - max(start, cursor)
        cursor = end
    return covered


def _distribution(durations: list[float]) -> dict:
    ordered = sorted(durations)
    return {
        "count": len(ordered),
        "total": sum(ordered),
        "min": ordered[0] if ordered else None,
        "max": ordered[-1] if ordered else None,
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "p99": percentile(ordered, 0.99),
    }


def aggregate_spans(trace: Trace) -> dict:
    """Flame-style aggregate: per span name, total vs self time and
    exact duration percentiles."""
    durations: dict[str, list[float]] = {}
    self_times: dict[str, float] = {}
    for node in trace.spans.values():
        durations.setdefault(node.name, []).append(node.duration)
        self_times[node.name] = self_times.get(node.name, 0.0) + (
            node.duration - _covered_by_children(node)
        )
    return {
        name: {**_distribution(values), "self_total": self_times[name]}
        for name, values in sorted(durations.items())
    }


def aggregate_tiers(trace: Trace) -> dict:
    """Per-tier latency distributions over tier-attributed spans."""
    durations: dict[str, list[float]] = {}
    for node in trace.spans.values():
        tier = node.tier_label()
        if tier is not None:
            durations.setdefault(tier, []).append(node.duration)
    return {
        tier: _distribution(values)
        for tier, values in sorted(durations.items())
    }


# ----------------------------------------------------------------------
# Stragglers
# ----------------------------------------------------------------------
def stragglers(trace: Trace, top: int = 5) -> list[dict]:
    """The slowest ``top`` spans, each with ancestry and the number of
    block-transfer flows concurrently in flight."""
    flows = trace.flow_spans()
    ranked = sorted(
        trace.spans.values(), key=lambda s: (-s.duration, s.span_id)
    )[:top]
    out = []
    for node in ranked:
        concurrent = sum(
            1
            for flow in flows
            if flow.span_id != node.span_id
            and flow.start < node.end
            and flow.end > node.start
        )
        out.append(
            {
                "span_id": node.span_id,
                "name": node.name,
                "tier": node.tier_label(),
                "status": node.status,
                "start": node.start,
                "duration": node.duration,
                "ancestry": [a.name for a in trace.ancestry(node)],
                "concurrent_flows": concurrent,
            }
        )
    return out


# ----------------------------------------------------------------------
# Alerts and detection delay
# ----------------------------------------------------------------------
def alert_report(trace: Trace) -> dict:
    """Alert timeline + fault→alert detection delays from one trace.

    The live monitors (:mod:`repro.obs.slo`, :mod:`repro.obs.health`)
    mirror every alert transition as a ``slo.alert`` / ``health.alert``
    tracer event, and the fault injector marks every applied fault with
    a ``fault.<kind>`` event — so the trace alone carries the full
    detection story. For each alert *firing*, the detection delay is
    measured against the most recent fault applied at or before it
    (``None`` when no fault preceded it: an organic alert); time to
    clear is the gap to the same alert key's next ``resolved``.
    """
    alerts = []
    faults = []
    for event in trace.events:
        name = event.get("name", "")
        if name in ("slo.alert", "health.alert"):
            alerts.append(event)
        elif name.startswith("fault."):
            faults.append(event)
    timeline = []
    resolve_times: dict[tuple, list[float]] = {}
    for event in alerts:
        attrs = event.get("attrs", {})
        if attrs.get("state") == "resolved":
            key = (event["name"], attrs.get("alert"), attrs.get("group", ""))
            resolve_times.setdefault(key, []).append(event["time"])
    detections = []
    for event in alerts:
        attrs = event.get("attrs", {})
        entry = {
            "time": event["time"],
            "source": event["name"].split(".")[0],
            "alert": attrs.get("alert"),
            "state": attrs.get("state"),
            "severity": attrs.get("severity"),
            "group": attrs.get("group", ""),
        }
        timeline.append(entry)
        if attrs.get("state") != "firing":
            continue
        cause = None
        for fault in faults:
            if fault["time"] <= event["time"]:
                cause = fault
            else:
                break
        key = (event["name"], attrs.get("alert"), attrs.get("group", ""))
        cleared = next(
            (t for t in resolve_times.get(key, []) if t >= event["time"]),
            None,
        )
        detections.append(
            {
                "alert": attrs.get("alert"),
                "group": attrs.get("group", ""),
                "fired_at": event["time"],
                "fault": cause["name"] if cause is not None else None,
                "fault_at": cause["time"] if cause is not None else None,
                "detection_delay": (
                    event["time"] - cause["time"] if cause is not None
                    else None
                ),
                "cleared_at": cleared,
                "time_to_clear": (
                    cleared - event["time"] if cleared is not None else None
                ),
            }
        )
    return {
        "count": len(timeline),
        "firing_at_end": sorted(
            {
                (e["alert"] or "") + (f"/{e['group']}" if e["group"] else "")
                for e in timeline
                if e["state"] == "firing"
                and not any(
                    o["alert"] == e["alert"]
                    and o["group"] == e["group"]
                    and o["state"] == "resolved"
                    and o["time"] >= e["time"]
                    for o in timeline
                )
            }
        ),
        "faults_seen": len(faults),
        "timeline": timeline,
        "detections": detections,
    }


# ----------------------------------------------------------------------
# The full report
# ----------------------------------------------------------------------
def analyze_trace(trace: Trace, top: int = 5) -> dict:
    """The complete deterministic analysis report for one trace."""
    requests = trace.requests()
    request_reports = [critical_path_report(trace, root) for root in requests]
    slowest = sorted(
        request_reports, key=lambda r: (-r["duration"], r["trace_id"])
    )[:top]
    times = [s.start for s in trace.spans.values()] + [
        s.end for s in trace.spans.values()
    ]
    return {
        "summary": {
            "records": len(trace.records),
            "spans": len(trace.spans),
            "events": len(trace.events),
            "requests": len(requests),
            "errors": sum(
                1 for s in trace.spans.values() if s.status != "ok"
            ),
            "time_range": [min(times), max(times)] if times else None,
            "problems": trace.problems,
        },
        "requests": slowest,
        "flame": aggregate_spans(trace),
        "tiers": aggregate_tiers(trace),
        "stragglers": stragglers(trace, top=top),
        "alerts": alert_report(trace),
    }


def analysis_json(analysis: dict) -> str:
    """Canonical (byte-stable) JSON rendering of an analysis report."""
    return json.dumps(analysis, sort_keys=True, indent=2) + "\n"
