"""Structured, sim-time request tracing.

Spans model one logical unit of work (a client block write, a master
allocation RPC, a block transfer flow, a repair round) with:

* ``span_id`` — a sequential integer, assigned in creation order, so two
  identically-seeded simulation runs assign identical IDs;
* ``trace_id`` — the ``span_id`` of the root span of the request, shared
  by every descendant;
* ``parent_id`` — the immediate parent span, or ``None`` for roots.

Because the simulation interleaves many generator-based processes on one
thread, the *implicit* current-span stack (``tracer.use(span)``) is only
safe inside synchronous sections that never yield back to the engine.
Spans that live across ``yield`` boundaries — block transfers, repair
rounds, client ops — must be linked with an explicit ``parent=`` at
creation time.

Finished spans and point events are appended to ``tracer.records`` as
plain dicts in completion order; :mod:`repro.obs.export` serializes them
to JSONL. The disabled path (:data:`NULL_TRACER`) hands back shared
singletons and records nothing.
"""

from __future__ import annotations

from typing import Callable


class Span:
    """One traced unit of work; call :meth:`end` exactly once."""

    __slots__ = ("tracer", "name", "span_id", "trace_id", "parent_id",
                 "start", "attrs", "_done")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        start: float,
        attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start = start
        self.attrs = attrs
        self._done = False

    def annotate(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """A point event parented to this span."""
        self.tracer.event(name, parent=self, **attrs)

    def end(self, status: str = "ok", **attrs) -> None:
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        record = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.tracer.now(),
            "status": status,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        tracer = self.tracer
        tracer.records.append(record)
        if tracer.tap is not None:
            tracer.tap(record)

    @property
    def duration(self) -> float:
        return self.tracer.now() - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id}, trace={self.trace_id})"


class _SpanScope:
    """``with tracer.use(span):`` — push/pop the implicit current span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: "Span") -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._stack.pop()


class Tracer:
    """Span factory emitting deterministic records in completion order."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._next_id = 1
        self._stack: list[Span] = []
        self.records: list[dict] = []
        #: Optional single subscriber called with every finished record
        #: (the flight recorder's ring-buffer feed). ``None`` keeps the
        #: hot path at one attribute load and one falsy check.
        self.tap: Callable[[dict], None] | None = None

    def now(self) -> float:
        return self._clock()

    @property
    def ids_issued(self) -> int:
        """How many span ids this tracer has handed out so far.

        Trace mergers (:class:`repro.obs.ObsCapture`) use this as the
        id-space width when offsetting several tracers into one stream.
        """
        return self._next_id - 1

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def start_span(
        self, name: str, parent: Span | None = None, **attrs
    ) -> Span:
        """Open a span. ``parent`` defaults to the implicit current span."""
        if parent is None:
            parent = self.current
        span_id = self._next_id
        self._next_id += 1
        trace_id = parent.trace_id if parent is not None else span_id
        parent_id = parent.span_id if parent is not None else None
        return Span(self, name, span_id, trace_id, parent_id,
                    self._clock(), attrs)

    def use(self, span: Span) -> _SpanScope:
        """Make ``span`` the implicit parent for the enclosed sync section."""
        return _SpanScope(self, span)

    def event(self, name: str, parent: Span | None = None, **attrs) -> None:
        """Record a point event, parented like a span but with no duration."""
        if parent is None:
            parent = self.current
        record = {
            "kind": "event",
            "name": name,
            "time": self._clock(),
            "trace_id": parent.trace_id if parent is not None else None,
            "parent_id": parent.span_id if parent is not None else None,
        }
        if attrs:
            record["attrs"] = attrs
        self.records.append(record)
        if self.tap is not None:
            self.tap(record)


class _NullScope:
    """Shared no-op ``with`` target for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class _NullSpan:
    """Shared no-op span; absorbs every call without allocating."""

    __slots__ = ()

    name = ""
    span_id = 0
    trace_id = 0
    parent_id = None
    start = 0.0
    duration = 0.0
    attrs: dict = {}

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass

    def end(self, status: str = "ok", **attrs) -> None:
        pass


class NullTracer:
    """The disabled tracer: stateless, allocation-free, shared singletons."""

    enabled = False

    __slots__ = ()

    records: list[dict] = []
    ids_issued = 0
    tap = None

    def now(self) -> float:
        return 0.0

    @property
    def current(self) -> None:
        return None

    def start_span(self, name: str = "", parent=None, **attrs) -> "_NullSpan":
        return NULL_SPAN

    def use(self, span) -> "_NullScope":
        return NULL_SCOPE

    def event(self, name: str = "", parent=None, **attrs) -> None:
        pass


#: Process-wide shared singletons for the disabled path.
NULL_SPAN = _NullSpan()
NULL_SCOPE = _NullScope()
NULL_TRACER = NullTracer()
