"""Chrome/Perfetto trace-event export.

Converts the JSONL span/event stream into the Trace Event Format that
``chrome://tracing`` and ``ui.perfetto.dev`` load directly:

* **process (pid) = request** — every trace root gets its own process
  row, named after the root span, so one block write/read reads as one
  collapsed track;
* **thread (tid) = lane** — within a request, spans land on lanes named
  for the component doing the work: ``client``, ``master``, ``worker``,
  and one ``flow …`` lane per tier combination a transfer crossed;
* spans become complete (``"ph": "X"``) events carrying their attrs as
  ``args``; point events become instants (``"ph": "i"``); process and
  thread names ship as metadata (``"ph": "M"``) records.

Timestamps are simulated **microseconds** (the format's native unit),
so one simulated second reads as one second in the viewer. Output is
deterministic: metadata first (sorted), then payload events in record
order, keys sorted by the serializer.
"""

from __future__ import annotations

import gzip
import json
from typing import Iterable

from repro.obs.export import _write_text

#: pid used for records that belong to no request (orphan events).
GLOBAL_PID = 0

_MICROS = 1e6


def _lane(record: dict) -> str:
    """The thread-lane a record renders on inside its request."""
    name = record.get("name", "")
    if name == "flow.transfer":
        attrs = record.get("attrs", {})
        tier = attrs.get("tier")
        if tier is None and attrs.get("tiers"):
            tier = "+".join(str(t) for t in attrs["tiers"])
        return f"flow {tier}" if tier else "flow"
    if record.get("kind") == "event":
        # Monitoring transitions get their own lane so burn alerts and
        # health flips line up visually against faults and transfers;
        # postmortem timeline markers get theirs for the same reason.
        if name in ("slo.alert", "health.alert"):
            return "alerts"
        if name.startswith("incident."):
            return "incidents"
        return "events"
    prefix = name.split(".", 1)[0]
    return prefix if prefix else "spans"


def chrome_trace(records: Iterable[dict]) -> dict:
    """Build the trace-event JSON document for a record stream."""
    materialized = list(records)
    # Root names label the per-request process rows.
    root_names: dict[int, str] = {}
    for record in materialized:
        if (
            record.get("kind") == "span"
            and record.get("span_id") == record.get("trace_id")
        ):
            root_names[record["trace_id"]] = record.get("name", "request")

    pids: list[int] = []
    tids: dict[tuple[int, str], int] = {}
    payload: list[dict] = []
    for record in materialized:
        trace_id = record.get("trace_id")
        pid = GLOBAL_PID if trace_id is None else trace_id
        if pid not in pids:
            pids.append(pid)
        lane = _lane(record)
        tid = tids.setdefault((pid, lane), len(tids) + 1)
        args = dict(record.get("attrs", {}))
        if record.get("kind") == "span":
            args["span_id"] = record["span_id"]
            args["status"] = record["status"]
            payload.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "cat": lane,
                    "ts": record["start"] * _MICROS,
                    "dur": (record["end"] - record["start"]) * _MICROS,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif record.get("kind") == "event":
            payload.append(
                {
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "name": record["name"],
                    "cat": lane,
                    "ts": record["time"] * _MICROS,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        # Unknown kinds are dropped; validate_trace_records flags them.

    metadata: list[dict] = []
    for pid in sorted(pids):
        label = (
            "(no request)"
            if pid == GLOBAL_PID
            else f"request {pid}: {root_names.get(pid, 'trace')}"
        )
        metadata.append(
            {
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": label},
            }
        )
        metadata.append(
            {
                "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for (pid, lane), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": lane},
            }
        )
    return {
        "traceEvents": metadata + payload,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.chrome", "spec": "trace-event"},
    }


def chrome_trace_json(records: Iterable[dict]) -> str:
    """The document as canonical (byte-stable) JSON."""
    return json.dumps(chrome_trace(records), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_chrome_trace(records: Iterable[dict], path: str) -> dict:
    """Write the Chrome trace for *records* to *path*; returns the document.

    A path ending in ``.gz`` compresses with the same pinned-header
    gzip conventions as :func:`repro.obs.export.write_jsonl` (mtime=0,
    no embedded filename), so compressed artifacts stay byte-stable.
    """
    document = chrome_trace(records)
    _write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n",
        path,
    )
    return document


def read_chrome_trace(path: str) -> dict:
    """Read a Chrome trace document back (plain or ``.gz``).

    Raises :class:`ValueError` with the offending path on malformed
    content, so the structural validator can run on compressed
    artifacts exactly as on plain ones.
    """
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            text = handle.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"{path}: invalid JSON ({exc})")
    if not isinstance(document, dict):
        raise ValueError(f"{path}: chrome trace is not a JSON object")
    return document


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural check against the trace-event schema (empty = ok)."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        missing = {"ph", "name", "pid", "tid"} - event.keys()
        if missing:
            problems.append(f"event {index}: missing {sorted(missing)}")
            continue
        phase = event["ph"]
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                problems.append(f"event {index}: X event needs ts and dur")
            elif event["dur"] < 0:
                problems.append(f"event {index}: negative duration")
        elif phase == "i":
            if "ts" not in event:
                problems.append(f"event {index}: instant needs ts")
        elif phase == "M":
            if not isinstance(event.get("args"), dict) or not event["args"]:
                problems.append(f"event {index}: metadata needs args")
        else:
            problems.append(f"event {index}: unsupported phase {phase!r}")
    return problems
