"""Sim-time-aware metrics: counters, gauges, histograms, time series.

A :class:`MetricsRegistry` hands out *instruments* keyed by metric name
plus a (sorted) label set, exactly as a Prometheus client library would
— except that every timestamp comes from the simulation clock
(``engine.now``), not the wall clock, so two identically-seeded runs
produce identical metric state.

Instrument kinds:

* :class:`Counter` — monotonically increasing total (bytes written,
  placement decisions, faults injected).
* :class:`Gauge` — a value that goes up and down (active flows,
  reachable workers, pending replication).
* :class:`Histogram` — observation distribution with cumulative
  buckets, count, and sum (block write/read latencies, MOOP scores).
* :class:`TimeSeries` — a gauge that remembers every sample as a
  ``(sim_time, value)`` pair (per-resource utilization over a run).

The **disabled** path is a first-class citizen: :data:`NULL_REGISTRY`
returns one shared no-op instrument from every factory call, holds no
state, and allocates no per-event objects — instrumented hot paths stay
near-zero-cost when observability is off. Callers are still expected to
guard label-building with ``if obs.enabled:`` so the label ``dict``
itself is never constructed on the disabled path.

Live consumers (the SLO monitor in :mod:`repro.obs.slo`) subscribe to
instrument updates through :meth:`MetricsRegistry.watch` rather than
polling snapshots: each ``(kind, name)`` pair carries one shared
watcher list that matching instruments hold a reference to, so the
per-update cost with no watchers registered is a single falsy check on
the instrument's ``watchers`` slot, and :meth:`NullRegistry.watch` is a
no-op.
"""

from __future__ import annotations

from typing import Callable, Iterator

#: Default histogram bucket upper bounds (simulated seconds / scores).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "watchers")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.watchers: list | None = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        if self.watchers:
            for watcher in self.watchers:
                watcher(self, amount)

    def data(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can move in both directions."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "watchers")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.watchers: list | None = None

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.watchers:
            for watcher in self.watchers:
                watcher(self, self.value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        if self.watchers:
            for watcher in self.watchers:
                watcher(self, self.value)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount
        if self.watchers:
            for watcher in self.watchers:
                watcher(self, self.value)

    def data(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Cumulative-bucket distribution (Prometheus histogram semantics)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "total", "min", "max", "watchers")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.watchers: list | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self.watchers:
            for watcher in self.watchers:
                watcher(self, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Prometheus ``histogram_quantile`` semantics — linear
        interpolation inside the bucket that crosses rank ``q * count``
        — with two refinements the exact ``min``/``max`` tracking makes
        possible: the result is clamped to ``[min, max]`` (so a
        single-sample histogram returns that sample for every ``q``),
        and the +Inf bucket reports ``max`` instead of the unbounded
        upper edge. Returns ``None`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        rank = q * self.count
        running = 0
        lower = self.min  # no observation sits below the tracked min
        for bound, in_bucket in zip(self.buckets, self.bucket_counts):
            if in_bucket:
                running += in_bucket
                if running >= rank:
                    fraction = 1.0 - (running - rank) / in_bucket
                    value = lower + (bound - lower) * fraction
                    return min(max(value, self.min), self.max)
            lower = max(lower, bound)
        return self.max  # rank falls in the +Inf bucket

    def quantiles(self) -> dict[str, float]:
        """The snapshot percentiles: p50/p90/p99 (empty dict if no data)."""
        if self.count == 0:
            return {}
        return {
            "p50": self.quantile(0.50),  # type: ignore[dict-item]
            "p90": self.quantile(0.90),  # type: ignore[dict-item]
            "p99": self.quantile(0.99),  # type: ignore[dict-item]
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, in_bucket in zip(self.buckets, self.bucket_counts):
            running += in_bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def data(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "quantiles": self.quantiles(),
            "buckets": [
                [bound if bound != float("inf") else "+Inf", count]
                for bound, count in self.cumulative_buckets()
            ],
        }


class TimeSeries:
    """A gauge that remembers every sample with its simulated timestamp."""

    kind = "timeseries"
    __slots__ = ("name", "labels", "samples", "_clock", "watchers")

    def __init__(
        self, name: str, labels: LabelKey, clock: Callable[[], float]
    ) -> None:
        self.name = name
        self.labels = labels
        self.samples: list[tuple[float, float]] = []
        self._clock = clock
        self.watchers: list | None = None

    def sample(self, value: float) -> None:
        self.samples.append((self._clock(), float(value)))
        if self.watchers:
            for watcher in self.watchers:
                watcher(self, self.samples[-1][1])

    @property
    def last(self) -> float | None:
        return self.samples[-1][1] if self.samples else None

    def data(self) -> dict:
        return {"samples": [[t, v] for t, v in self.samples]}


class MetricsRegistry:
    """Create-or-get instrument factory, stamped by the simulation clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._instruments: dict[tuple[str, str, LabelKey], object] = {}
        self._watchers: dict[tuple[str, str], list] = {}

    def now(self) -> float:
        return self._clock()

    def _get(self, kind: str, factory, name: str, labels: dict) -> object:
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, key[2])
            if self._watchers:
                # The shared list is attached by reference: watchers
                # registered later reach this instrument for free.
                instrument.watchers = self._watchers.get((kind, name))
            self._instruments[key] = instrument
        return instrument

    def watch(self, kind: str, name: str, callback: Callable) -> None:
        """Subscribe ``callback(instrument, value)`` to metric updates.

        Fires on every update of any instrument named ``name`` of kind
        ``kind`` (all label sets), existing or future, with the
        *observed* value — the histogram observation, counter
        increment, gauge/timeseries value. Watchers must not mint or
        mutate instruments from inside the callback.
        """
        watchers = self._watchers.get((kind, name))
        if watchers is None:
            watchers = self._watchers[(kind, name)] = []
        watchers.append(callback)
        for (k, n, _), instrument in self._instruments.items():
            if k == kind and n == name:
                instrument.watchers = watchers

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        factory = lambda n, lk: Histogram(n, lk, buckets)  # noqa: E731
        return self._get("histogram", factory, name, labels)  # type: ignore[return-value]

    def timeseries(self, name: str, **labels: str) -> TimeSeries:
        factory = lambda n, lk: TimeSeries(n, lk, self._clock)  # noqa: E731
        return self._get("timeseries", factory, name, labels)  # type: ignore[return-value]

    def find(self, kind: str, name: str, **labels: str) -> object | None:
        """Look up an existing instrument WITHOUT creating it.

        The factory methods mint an instrument on first touch, which is
        right for producers but wrong for passive readers: a consumer
        probing for a histogram it only *might* find would leave an
        empty instrument behind and change every subsequent export. The
        tiering engine reads latency signals through this instead.
        """
        return self._instruments.get((kind, name, _label_key(labels)))

    def instruments(self) -> Iterator:
        """All instruments, deterministically ordered by (kind, name, labels)."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def snapshot(self) -> dict:
        """The full registry as a JSON-serializable, deterministic dict.

        Always carries every instrument-kind key, so consumers can index
        into ``snapshot()["counters"]`` without guarding against a
        registry that never saw that kind.
        """
        out: dict[str, list] = {
            kind + "s": []
            for kind in ("counter", "gauge", "histogram", "timeseries")
        }
        for instrument in self.instruments():
            out.setdefault(instrument.kind + "s", []).append(
                {
                    "name": instrument.name,
                    "labels": {k: v for k, v in instrument.labels},
                    **instrument.data(),
                }
            )
        return out

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """One shared no-op standing in for every instrument kind."""

    kind = "null"
    name = ""
    labels: LabelKey = ()
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    last = None
    watchers = None

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def sample(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def quantiles(self) -> dict:
        return {}

    def data(self) -> dict:
        return {}


#: The process-wide shared no-op instrument.
NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: stateless, allocation-free, shared no-ops."""

    enabled = False

    __slots__ = ()

    def now(self) -> float:
        return 0.0

    def counter(self, name: str = "", **labels: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str = "", **labels: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str = "", **labels: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def timeseries(self, name: str = "", **labels: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def find(self, kind: str = "", name: str = "", **labels: str) -> None:
        return None

    def watch(self, kind: str = "", name: str = "", callback=None) -> None:
        return None

    def instruments(self) -> Iterator:
        return iter(())

    def snapshot(self) -> dict:
        return {}

    def __len__(self) -> int:
        return 0


#: The process-wide shared disabled registry.
NULL_REGISTRY = NullRegistry()
