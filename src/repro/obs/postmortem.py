"""Automated incident postmortems from flight-recorder bundles.

An incident bundle (:mod:`repro.obs.recorder`) is raw forensics: the
windowed contents of every ring at the moment the incident sealed.
This module turns one into the document an on-call engineer would
write by hand:

* :func:`build_timeline` — the **causal timeline**: applied faults,
  windowed-metric deviations (the first sample of each watched series
  that left its pre-fault baseline), alert transitions, unhandled
  exceptions, tiering actions, repairs, and resolutions, merged into
  one deterministically ordered list;
* :func:`blast_radius` — which requests, tiers, and workers the
  degraded interval touched, computed from span overlap and ancestry
  (plus a ``tenants`` field that stays empty until the workloads grow
  multi-tenancy);
* degraded-request **critical paths** — :func:`repro.obs.analyze.critical_path`
  applied only to the request roots that overlap the degraded
  interval, so the report shows where the slow requests actually
  spent their time;
* :func:`postmortem_report` / :func:`postmortem_json` — all of the
  above as one canonical JSON-serializable document (what
  ``repro postmortem --json`` prints), plus :func:`postmortem_text`
  for the human rendering.

Everything is a pure function of the bundle, so byte-identical bundles
yield byte-identical postmortems.
"""

from __future__ import annotations

import gzip
import json

from repro.obs.analyze import Trace, critical_path_report
from repro.obs.export import schema_version_problem
from repro.obs.provenance import decision_summary
from repro.obs.recorder import is_heal

__all__ = [
    "BundleError",
    "read_bundle",
    "validate_bundle",
    "build_timeline",
    "blast_radius",
    "blast_radius_decisions",
    "bundle_trace_records",
    "postmortem_report",
    "postmortem_json",
    "postmortem_text",
]

#: The sections every bundle carries (all lists of records).
BUNDLE_SECTIONS = (
    "spans", "events", "metric_deltas", "faults", "health", "alerts"
)

#: Sections newer recorders add; validated and reported only when
#: present, so pre-provenance bundles stay fully readable.
OPTIONAL_SECTIONS = ("decisions",)

#: Tie-break rank when several timeline entries share a timestamp: the
#: causal story reads fault → deviation → alert → exception → action →
#: repair → resolution.
_TYPE_RANK = {
    "fault": 0,
    "deviation": 1,
    "alert": 2,
    "exception": 3,
    "action": 4,
    "repair": 5,
    "resolution": 6,
}

#: Span attr keys that name a worker/node (for blast radius).
_WORKER_ATTRS = ("worker", "node", "source", "target_worker")


class BundleError(ValueError):
    """An unreadable or structurally invalid incident bundle."""


def read_bundle(path: str) -> dict:
    """Read an incident bundle (plain or ``.gz``) and sanity-check it."""
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                text = handle.read()
        else:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
    except OSError as exc:
        raise BundleError(f"{path}: cannot read bundle ({exc})")
    try:
        bundle = json.loads(text)
    except ValueError as exc:
        raise BundleError(f"{path}: invalid JSON ({exc})")
    if not isinstance(bundle, dict):
        raise BundleError(f"{path}: bundle is not a JSON object")
    if bundle.get("kind") != "incident_bundle":
        raise BundleError(
            f"{path}: kind {bundle.get('kind')!r} != 'incident_bundle'"
        )
    problem = schema_version_problem(bundle.get("schema_version"))
    if problem:
        raise BundleError(f"{path}: {problem}")
    return bundle


def validate_bundle(bundle: dict) -> list[str]:
    """Structural check of a bundle; returns problems (empty = ok)."""
    problems: list[str] = []
    incident = bundle.get("incident")
    if not isinstance(incident, dict):
        return ["incident section missing or not an object"]
    for key in ("id", "triggered_at", "closed_at", "window", "triggers"):
        if key not in incident:
            problems.append(f"incident missing {key!r}")
    window = incident.get("window")
    if (
        not isinstance(window, list) or len(window) != 2
        or not all(isinstance(v, (int, float)) for v in window)
    ):
        problems.append("incident window is not a [lo, hi] pair")
        window = None
    elif window[0] > window[1]:
        problems.append("incident window lo > hi")
    if not incident.get("triggers"):
        problems.append("incident has no triggers")
    sections = BUNDLE_SECTIONS + tuple(
        s for s in OPTIONAL_SECTIONS if s in bundle
    )
    for section in sections:
        records = bundle.get(section)
        if not isinstance(records, list):
            problems.append(f"section {section!r} missing or not a list")
            continue
        if window is None:
            continue
        lo, hi = window
        for index, record in enumerate(records):
            if not isinstance(record, dict):
                problems.append(f"{section}[{index}]: not an object")
                continue
            if section == "spans":
                inside = (
                    record.get("end", lo) >= lo
                    and record.get("start", hi) <= hi
                )
            else:
                time = record.get("time")
                inside = (
                    isinstance(time, (int, float)) and lo <= time <= hi
                )
            if not inside:
                problems.append(
                    f"{section}[{index}]: outside the incident window"
                )
    return problems


# ----------------------------------------------------------------------
# Causal timeline
# ----------------------------------------------------------------------
def _series_key(delta: dict) -> tuple:
    return (
        delta.get("metric", ""),
        tuple(sorted((delta.get("labels") or {}).items())),
    )


def _deviations(bundle: dict, factor: float) -> list[dict]:
    """The first sample per watched series that left its baseline.

    The baseline is the largest value the series showed at or before
    the first damaging fault (the incident's presumed cause); the
    deviation is the first later sample exceeding ``factor`` × that
    baseline. A series with no pre-fault samples of its own — e.g.
    reads that only started hitting the HDD tier once the memory
    medium degraded — is judged against the metric-wide pre-fault
    baseline instead; metrics entirely absent before the fault are
    skipped (nothing to deviate from).
    """
    faults = [
        f for f in bundle.get("faults", ())
        if not is_heal(f.get("kind", ""), f.get("detail", ""))
    ]
    if not faults:
        return []
    fault_time = min(f["time"] for f in faults)
    baselines: dict[tuple, float] = {}
    metric_baselines: dict[str, float] = {}
    deviations: list[dict] = []
    flagged: set[tuple] = set()
    for delta in bundle.get("metric_deltas", ()):
        key = _series_key(delta)
        metric = delta.get("metric", "")
        value = delta.get("value")
        if not isinstance(value, (int, float)):
            continue
        if delta["time"] <= fault_time:
            if value > baselines.get(key, 0.0):
                baselines[key] = value
            if value > metric_baselines.get(metric, 0.0):
                metric_baselines[metric] = value
            continue
        baseline = baselines.get(key, metric_baselines.get(metric))
        if key in flagged or baseline is None or baseline <= 0:
            continue
        if value > factor * baseline:
            flagged.add(key)
            deviations.append(
                {
                    "time": delta["time"],
                    "type": "deviation",
                    "label": delta.get("metric", ""),
                    "detail": (
                        f"value {value:g} > {factor:g}x baseline "
                        f"{baseline:g}"
                    ),
                    "metric": delta.get("metric", ""),
                    "labels": dict(delta.get("labels") or {}),
                    "value": value,
                    "baseline": baseline,
                }
            )
    return deviations


def build_timeline(bundle: dict, deviation_factor: float = 2.0) -> list[dict]:
    """The merged causal timeline of one incident.

    Every entry carries ``time``, ``type`` (one of ``fault``,
    ``deviation``, ``alert``, ``exception``, ``action``, ``repair``,
    ``resolution``), a short ``label``, and a ``detail`` string; typed
    entries add their own fields. Ordered by time, then causal rank,
    then label — fully deterministic.
    """
    entries: list[dict] = []
    for record in bundle.get("faults", ()):
        kind = record.get("kind", "")
        detail = record.get("detail", "")
        entry_type = "repair" if is_heal(kind, detail) else "fault"
        entries.append(
            {
                "time": record["time"],
                "type": entry_type,
                "label": kind,
                "detail": " ".join(
                    part for part in (record.get("target", ""), detail)
                    if part
                ),
                "target": record.get("target", ""),
            }
        )
    for record in bundle.get("alerts", ()):
        state = record.get("state")
        entry_type = "alert" if state == "firing" else "resolution"
        group = record.get("group", "")
        entries.append(
            {
                "time": record["time"],
                "type": entry_type,
                "label": record.get("name", ""),
                "detail": (
                    f"{record.get('source', '')} {state}"
                    + (f" group={group}" if group else "")
                ),
                "source": record.get("source", ""),
                "severity": record.get("severity", ""),
            }
        )
    for record in bundle.get("events", ()):
        name = record.get("name", "")
        attrs = record.get("attrs", {})
        if name in ("tier.promote", "tier.demote"):
            entries.append(
                {
                    "time": record["time"],
                    "type": "action",
                    "label": name,
                    "detail": " ".join(
                        f"{key}={attrs[key]}" for key in sorted(attrs)
                    ),
                }
            )
        elif name == "recorder.exception":
            entries.append(
                {
                    "time": record["time"],
                    "type": "exception",
                    "label": attrs.get("error", "Exception"),
                    "detail": attrs.get("component", ""),
                }
            )
    entries.extend(_deviations(bundle, deviation_factor))
    entries.sort(
        key=lambda e: (e["time"], _TYPE_RANK.get(e["type"], 9), e["label"])
    )
    return entries


def causal_chain(timeline: list[dict]) -> dict:
    """First occurrence per causal stage and whether the story closed.

    ``complete`` means the canonical arc — fault, deviation, alert,
    repair, resolution — all appeared, in non-decreasing time order.
    """
    first: dict[str, float] = {}
    for entry in timeline:
        first.setdefault(entry["type"], entry["time"])
    stages = ("fault", "deviation", "alert", "repair", "resolution")
    times = [first.get(stage) for stage in stages]
    complete = all(t is not None for t in times) and all(
        a <= b for a, b in zip(times, times[1:])
    )
    return {
        "stages": {stage: first.get(stage) for stage in stages},
        "complete": complete,
        "detection_delay": (
            first["alert"] - first["fault"]
            if "alert" in first and "fault" in first
            and first["alert"] >= first["fault"]
            else None
        ),
        "time_to_repair": (
            first["repair"] - first["fault"]
            if "repair" in first and "fault" in first
            and first["repair"] >= first["fault"]
            else None
        ),
        "time_to_resolve": (
            first["resolution"] - first["fault"]
            if "resolution" in first and "fault" in first
            and first["resolution"] >= first["fault"]
            else None
        ),
    }


# ----------------------------------------------------------------------
# Blast radius and degraded critical paths
# ----------------------------------------------------------------------
def _degraded_interval(bundle: dict, timeline: list[dict]) -> tuple:
    """``[first damaging fault, last resolution]``, clipped to window."""
    lo, hi = bundle["incident"]["window"]
    fault_times = [e["time"] for e in timeline if e["type"] == "fault"]
    resolution_times = [
        e["time"] for e in timeline if e["type"] == "resolution"
    ]
    start = min(fault_times) if fault_times else lo
    end = max(resolution_times) if resolution_times else hi
    return (start, max(start, end))


def _bundle_trace(bundle: dict) -> Trace:
    # Window clipping orphans some parents; the DAG degrades gracefully
    # (clipped children become roots) and validation noise is expected,
    # so Trace.problems is deliberately ignored here.
    return Trace([*bundle.get("spans", ()), *bundle.get("events", ())])


def blast_radius(
    bundle: dict, timeline: list[dict], trace: Trace | None = None
) -> dict:
    """Who got hurt: requests, tiers, and workers in the degraded window."""
    if trace is None:
        trace = _bundle_trace(bundle)
    start, end = _degraded_interval(bundle, timeline)
    requests: set[int] = set()
    tiers: set[str] = set()
    workers: set[str] = set()
    tenants: set[str] = set()
    for node in trace.spans.values():
        if node.end < start or node.start > end:
            continue
        requests.add(node.trace_id)
        tier = node.tier_label()
        if tier is not None:
            tiers.update(tier.split("+"))
        attrs = node.attrs
        for key in _WORKER_ATTRS:
            value = attrs.get(key)
            if isinstance(value, str) and value:
                workers.add(value.split(":", 1)[0])
        tenant = attrs.get("tenant")
        if isinstance(tenant, str) and tenant:
            tenants.add(tenant)
    for entry in timeline:
        if entry["type"] in ("fault", "repair") and entry.get("target"):
            workers.add(entry["target"].split(":", 1)[0])
    return {
        "degraded_interval": [start, end],
        "affected_requests": len(requests),
        "request_ids": sorted(requests),
        "tiers": sorted(tiers),
        "workers": sorted(workers),
        "tenants": sorted(tenants),
    }


def blast_radius_decisions(bundle: dict, timeline: list[dict]) -> list[dict]:
    """Replica-affecting decisions inside the degraded interval.

    Pulled from the bundle's optional ``decisions`` section (fed by an
    attached provenance ledger); empty for pre-provenance bundles or
    runs without a ledger.
    """
    decisions = bundle.get("decisions")
    if not decisions:
        return []
    start, end = _degraded_interval(bundle, timeline)
    return [
        {
            "seq": record.get("seq"),
            "time": record["time"],
            "action": record.get("action", ""),
            "path": record.get("path", ""),
            "incident": record.get("incident"),
            "summary": decision_summary(record),
        }
        for record in decisions
        if start <= record["time"] <= end
    ]


def degraded_critical_paths(
    bundle: dict,
    timeline: list[dict],
    trace: Trace | None = None,
    top: int = 5,
) -> list[dict]:
    """Critical paths of the slowest requests inside the degraded window.

    Only *true* request roots (``span_id == trace_id``) are analyzed —
    clipped subtrees whose parents fell off the ring would misattribute
    time.
    """
    if trace is None:
        trace = _bundle_trace(bundle)
    start, end = _degraded_interval(bundle, timeline)
    roots = [
        node for node in trace.roots
        if node.span_id == node.trace_id
        and node.end >= start and node.start <= end
    ]
    roots.sort(key=lambda r: (-r.duration, r.span_id))
    return [critical_path_report(trace, root) for root in roots[:top]]


# ----------------------------------------------------------------------
# Chrome bridge
# ----------------------------------------------------------------------
def bundle_trace_records(bundle: dict, timeline: list[dict] | None = None):
    """The bundle as a trace-record stream with an incidents lane.

    The captured spans and events pass through untouched; every
    timeline entry additionally becomes an ``incident.<type>`` instant
    event with no trace id, which :mod:`repro.obs.chrome` renders on a
    dedicated ``incidents`` lane of the global row.
    """
    if timeline is None:
        timeline = build_timeline(bundle)
    records = [*bundle.get("spans", ()), *bundle.get("events", ())]
    for entry in timeline:
        records.append(
            {
                "kind": "event",
                "name": f"incident.{entry['type']}",
                "time": entry["time"],
                "trace_id": None,
                "parent_id": None,
                "attrs": {
                    "label": entry["label"],
                    "detail": entry["detail"],
                },
            }
        )
    return records


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
def postmortem_report(
    bundle: dict, top: int = 5, deviation_factor: float = 2.0
) -> dict:
    """The complete postmortem document for one incident bundle."""
    incident = bundle["incident"]
    timeline = build_timeline(bundle, deviation_factor=deviation_factor)
    trace = _bundle_trace(bundle)
    return {
        "incident": {
            "id": incident["id"],
            "triggered_at": incident["triggered_at"],
            "closed_at": incident["closed_at"],
            "window": list(incident["window"]),
            "triggers": list(incident["triggers"]),
        },
        "captured": {
            section: len(bundle.get(section, ()))
            for section in BUNDLE_SECTIONS + tuple(
                s for s in OPTIONAL_SECTIONS if s in bundle
            )
        },
        "timeline": timeline,
        "causal_chain": causal_chain(timeline),
        "blast_radius": blast_radius(bundle, timeline, trace),
        "decisions": blast_radius_decisions(bundle, timeline),
        "critical_paths": degraded_critical_paths(
            bundle, timeline, trace, top=top
        ),
        "problems": validate_bundle(bundle),
    }


def postmortem_json(report: dict) -> str:
    """Canonical (byte-stable) JSON rendering of a postmortem report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def postmortem_text(report: dict) -> str:
    """The human rendering ``repro postmortem`` prints by default."""
    incident = report["incident"]
    chain = report["causal_chain"]
    radius = report["blast_radius"]
    lines = [
        f"incident #{incident['id']}  "
        f"window [{incident['window'][0]:.3f}s, "
        f"{incident['window'][1]:.3f}s]",
        "triggers: " + "; ".join(
            f"{t['reason']}@{t['time']:.3f}s ({t['detail']})"
            if t.get("detail") else f"{t['reason']}@{t['time']:.3f}s"
            for t in incident["triggers"]
        ),
        "",
        "timeline:",
    ]
    for entry in report["timeline"]:
        detail = f"  {entry['detail']}" if entry["detail"] else ""
        lines.append(
            f"  {entry['time']:9.3f}s  {entry['type']:<10s} "
            f"{entry['label']}{detail}"
        )
    lines.append("")
    lines.append(
        "causal chain: "
        + ("complete" if chain["complete"] else "incomplete")
        + " ("
        + " -> ".join(
            f"{stage}@{time:.3f}s" if time is not None else f"{stage}@?"
            for stage, time in chain["stages"].items()
        )
        + ")"
    )
    if chain["detection_delay"] is not None:
        lines.append(
            f"detection delay: {chain['detection_delay']:.3f}s"
            + (
                f"  time to repair: {chain['time_to_repair']:.3f}s"
                if chain["time_to_repair"] is not None else ""
            )
            + (
                f"  time to resolve: {chain['time_to_resolve']:.3f}s"
                if chain["time_to_resolve"] is not None else ""
            )
        )
    lines.append(
        f"blast radius: {radius['affected_requests']} requests, "
        f"tiers [{', '.join(radius['tiers'])}], "
        f"workers [{', '.join(radius['workers'])}]"
        + (
            f", tenants [{', '.join(radius['tenants'])}]"
            if radius["tenants"] else ""
        )
    )
    if report.get("decisions"):
        lines.append("")
        lines.append("decisions in the blast radius:")
        for entry in report["decisions"]:
            lines.append(
                f"  {entry['time']:9.3f}s  {entry['action']:<16s} "
                f"{entry['path']}  {entry['summary']}"
            )
    if report["critical_paths"]:
        lines.append("")
        lines.append("degraded critical paths:")
        for path in report["critical_paths"]:
            lines.append(
                f"  request {path['trace_id']} ({path['root']}, "
                f"{path['duration']:.3f}s) dominated by {path['dominant']}"
            )
    if report["problems"]:
        lines.append("")
        lines.append("bundle problems:")
        for problem in report["problems"]:
            lines.append(f"  - {problem}")
    return "\n".join(lines) + "\n"
