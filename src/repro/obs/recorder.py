"""The always-on flight recorder: bounded capture, triggered forensics.

A full-run trace of a busy simulation is millions of records; when a
fault fires an alert mid-run, the forensics question is "what happened
in the last thirty seconds", not "replay everything". The
:class:`FlightRecorder` answers it the way aircraft recorders do —
bounded, sim-clock ring buffers of the most recent telemetry:

* finished **trace spans** and point **events** (fed by the tracer's
  single :attr:`~repro.obs.tracing.Tracer.tap` subscriber);
* **metric watch-deltas** for a configurable set of instruments
  (via :meth:`~repro.obs.registry.MetricsRegistry.watch`);
* applied **fault records**, **health sweeps**, and **alerts** (fed by
  the fault injector, the health monitor, and every
  :class:`~repro.obs.slo.AlertSink`).

When a trigger fires — a fault activation, an SLO alert, a health
invariant violation, or an unhandled engine exception — the recorder
opens an *incident*: it keeps collecting for ``post_roll`` simulated
seconds (an engine timer closes it deterministically), then snapshots
the ``pre_roll``-to-close window of every ring into a self-contained
**incident bundle**, dumped as byte-stable gzip JSON.

Determinism contract, mirroring the tracer and the SLO monitor: an
attached recorder only *observes* — it mints no instruments and emits
no trace records, so trace/metrics/Prometheus exports of a run with a
quiet recorder are byte-identical to a recorder-less run. All bundle
timestamps are simulation time and serialization is canonical, so two
seeded runs dump byte-identical bundles. The detached path is the
shared :data:`NULL_RECORDER` singleton — every instrumented site costs
one attribute load and a no-op method call.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError
from repro.obs.export import SCHEMA_VERSION, _write_text, to_jsonl

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.system import OctopusFileSystem
    from repro.sim.faults import FaultRecord

__all__ = [
    "RecorderConfig",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "HEAL_KINDS",
    "is_heal",
    "bundle_json",
    "write_bundle",
]

#: Fault kinds that undo damage rather than cause it; they are recorded
#: but never open an incident, and the postmortem timeline renders them
#: as ``repair`` entries.
HEAL_KINDS = frozenset(
    {"restart", "unsilence", "repair_medium", "restore_node"}
)

#: The trigger sources a config may enable.
TRIGGER_KINDS = ("fault", "alert", "health", "exception")

#: Metric streams the recorder snapshots deltas of by default — the
#: read-path signals the stock SLO rules watch, so a bundle can show
#: the deviation that preceded the alert.
DEFAULT_WATCH_METRICS = (
    ("histogram", "tier_read_seconds"),
    ("counter", "blocks_read_total"),
    ("counter", "block_reads_failed_total"),
)


def is_heal(kind: str, detail: str = "") -> bool:
    """Whether a fault record undoes damage instead of causing it.

    ``degrade_medium``/``slow_node`` with ``factor >= 1`` restore full
    throughput and count as heals too.
    """
    if kind in HEAL_KINDS:
        return True
    if kind in ("degrade_medium", "slow_node") and detail.startswith(
        "factor="
    ):
        try:
            return float(detail[len("factor="):]) >= 1.0
        except ValueError:
            return False
    return False


@dataclass(frozen=True)
class RecorderConfig:
    """Ring bounds, capture window, and trigger selection."""

    #: Simulated seconds of history kept before the trigger instant.
    pre_roll: float = 30.0
    #: Simulated seconds captured after the trigger before the bundle
    #: is sealed (an engine timer closes the incident).
    post_roll: float = 10.0
    max_spans: int = 4096
    max_events: int = 2048
    max_metric_deltas: int = 8192
    max_faults: int = 512
    max_health: int = 512
    max_alerts: int = 256
    #: Provenance decision records mirrored from an attached
    #: :class:`~repro.obs.provenance.ProvenanceLedger`.
    max_decisions: int = 1024
    #: ``(kind, name)`` metric streams whose updates land in the
    #: watch-delta ring.
    watch_metrics: tuple = DEFAULT_WATCH_METRICS
    #: Which trigger sources open incidents.
    triggers: tuple = TRIGGER_KINDS
    #: Hard cap on incidents per run; later triggers are counted as
    #: dropped instead of dumping unbounded bundles.
    max_incidents: int = 16

    def __post_init__(self) -> None:
        if self.pre_roll < 0 or self.post_roll < 0:
            raise ConfigurationError("pre_roll/post_roll must be >= 0")
        for name in ("max_spans", "max_events", "max_metric_deltas",
                     "max_faults", "max_health", "max_alerts",
                     "max_decisions"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.max_incidents < 1:
            raise ConfigurationError("max_incidents must be >= 1")
        unknown = set(self.triggers) - set(TRIGGER_KINDS)
        if unknown:
            raise ConfigurationError(
                f"unknown trigger kinds {sorted(unknown)}; "
                f"choose from {TRIGGER_KINDS}"
            )


# ----------------------------------------------------------------------
# Bundle serialization (the read side lives in repro.obs.postmortem)
# ----------------------------------------------------------------------
def bundle_json(bundle: dict) -> str:
    """An incident bundle as canonical (byte-stable) JSON."""
    import json

    return json.dumps(bundle, sort_keys=True, separators=(",", ":")) + "\n"


def write_bundle(bundle: dict, path: str) -> None:
    """Write a bundle; a ``.gz`` path compresses deterministically."""
    _write_text(bundle_json(bundle), path)


class FlightRecorder:
    """Bounded always-on capture with triggered incident bundles.

    Construct with a ``system`` (engine-driven runs; incidents close on
    an engine timer) or with ``obs=``/``clock=`` for engine-less
    harnesses like S-Live, where :meth:`flush` seals any open incident.
    Call :meth:`attach` to start observing and :meth:`detach` (or
    :meth:`flush` at end of run) to stop.
    """

    enabled = True

    def __init__(
        self,
        system: "OctopusFileSystem | None" = None,
        config: RecorderConfig | None = None,
        out_dir: str | None = None,
        obs=None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if system is not None:
            obs = system.obs
            engine = system.engine
            if clock is None:
                clock = lambda: engine.now  # noqa: E731
        elif obs is None:
            raise ConfigurationError(
                "FlightRecorder needs a system or an explicit obs bundle"
            )
        if not obs.enabled:
            raise ConfigurationError(
                "FlightRecorder needs observability enabled; call "
                "obs.enable() before constructing the recorder"
            )
        self.system = system
        self.obs = obs
        self.clock = clock if clock is not None else obs.now
        self.config = config if config is not None else RecorderConfig()
        self.out_dir = out_dir
        c = self.config
        self.spans: deque = deque(maxlen=c.max_spans)
        self.events: deque = deque(maxlen=c.max_events)
        self.metric_deltas: deque = deque(maxlen=c.max_metric_deltas)
        self.faults: deque = deque(maxlen=c.max_faults)
        self.health: deque = deque(maxlen=c.max_health)
        self.alerts: deque = deque(maxlen=c.max_alerts)
        self.decisions: deque = deque(maxlen=c.max_decisions)
        #: Closed incident summaries, in close order.
        self.incidents: list[dict] = []
        #: Closed bundles (always kept in memory; also written under
        #: ``out_dir`` when one is configured).
        self.bundles: list[dict] = []
        self.bundle_paths: list[str] = []
        self.dropped_triggers = 0
        self._trigger_set = frozenset(c.triggers)
        self._open: dict | None = None
        self._timer = None
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._attached

    def attach(self) -> "FlightRecorder":
        """Hook the tracer tap, metric watchers, and ``obs.recorder``."""
        if self._attached:
            raise ConfigurationError("recorder already attached")
        if getattr(self.obs.recorder, "enabled", False):
            raise ConfigurationError(
                "another FlightRecorder is already attached to this obs "
                "bundle; detach it first"
            )
        if self.obs.tracer.tap is not None:
            raise ConfigurationError("the tracer tap is already taken")
        self._attached = True
        self.obs.recorder = self
        self.obs.tracer.tap = self._on_trace_record
        for kind, name in self.config.watch_metrics:
            self.obs.metrics.watch(kind, name, self._on_metric)
        if self.system is not None:
            self.system.engine.crash_listeners.append(self._on_crash)
        return self

    def detach(self) -> None:
        """Seal any open incident and stop observing (idempotent)."""
        if not self._attached:
            return
        self.flush()
        self._attached = False
        # Bound-method equality (not identity): each attribute access
        # mints a fresh method object.
        if self.obs.tracer.tap == self._on_trace_record:
            self.obs.tracer.tap = None
        if self.obs.recorder is self:
            self.obs.recorder = NULL_RECORDER
        if self.system is not None:
            listeners = self.system.engine.crash_listeners
            if self._on_crash in listeners:
                listeners.remove(self._on_crash)
        # Registry watchers cannot be unregistered; _on_metric checks
        # _attached and goes inert instead.

    def flush(self) -> None:
        """Close any open incident at the current instant (end of run)."""
        if self._open is not None:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._close_open()

    # ------------------------------------------------------------------
    # Ring-buffer feeds (hot paths: append only, no allocation beyond
    # the entry itself)
    # ------------------------------------------------------------------
    def _on_trace_record(self, record: dict) -> None:
        if record["kind"] == "span":
            self.spans.append(record)
        else:
            self.events.append(record)

    def _on_metric(self, instrument, value: float) -> None:
        if not self._attached:
            return
        self.metric_deltas.append(
            {
                "time": self.clock(),
                "kind": instrument.kind,
                "metric": instrument.name,
                "labels": dict(instrument.labels),
                "value": value,
            }
        )

    def on_fault(self, record: "FaultRecord") -> None:
        """Fed by :meth:`repro.sim.faults.FaultInjector._record`."""
        self.faults.append(
            {
                "time": record.time,
                "kind": record.kind,
                "target": record.target,
                "detail": record.detail,
            }
        )
        if "fault" in self._trigger_set and not is_heal(
            record.kind, record.detail
        ):
            self.trigger("fault", f"{record.kind} {record.target}")

    def on_alert(self, record: dict) -> None:
        """Fed by every :class:`~repro.obs.slo.AlertSink` transition."""
        self.alerts.append(record)
        if record.get("state") != "firing":
            return
        reason = "health" if record.get("source") == "health" else "alert"
        if reason in self._trigger_set:
            self.trigger(reason, str(record.get("name", "")))

    def on_health(self, entry: dict) -> None:
        """Fed by :meth:`repro.obs.health.HealthMonitor.tick` sweeps."""
        self.health.append(entry)

    def on_decision(self, record: dict) -> None:
        """Fed by an attached provenance ledger, so incident bundles
        carry the replica-affecting decisions inside their window."""
        self.decisions.append(record)

    def _on_crash(self, process, exc: BaseException) -> None:
        name = getattr(process, "name", "") or "anonymous"
        self.on_exception(f"process:{name}", exc)

    def on_exception(self, component: str, exc: BaseException) -> None:
        """Fed by engine crash listeners and subsystem guard rails."""
        self.events.append(
            {
                "kind": "event",
                "name": "recorder.exception",
                "time": self.clock(),
                "trace_id": None,
                "parent_id": None,
                "attrs": {
                    "component": component,
                    "error": type(exc).__name__,
                },
            }
        )
        if "exception" in self._trigger_set:
            self.trigger("exception", f"{component}: {type(exc).__name__}")

    # ------------------------------------------------------------------
    # Incidents
    # ------------------------------------------------------------------
    def trigger(self, reason: str, detail: str = "") -> dict | None:
        """Open an incident (or note a trigger on the open one)."""
        now = self.clock()
        if self._open is not None:
            self._open["triggers"].append(
                {"time": now, "reason": reason, "detail": detail}
            )
            return self._open
        if len(self.incidents) >= self.config.max_incidents:
            self.dropped_triggers += 1
            return None
        incident = {
            "id": len(self.incidents) + 1,
            "triggered_at": now,
            "deadline": now + self.config.post_roll,
            "triggers": [
                {"time": now, "reason": reason, "detail": detail}
            ],
        }
        self._open = incident
        if self.system is not None:
            self._timer = self.system.engine.call_at(
                incident["deadline"], self._close_open
            )
        return incident

    @property
    def open_incident(self) -> dict | None:
        return self._open

    def _window(self, ring, lo: float, hi: float) -> list[dict]:
        return [r for r in ring if lo <= r["time"] <= hi]

    def _close_open(self) -> None:
        incident = self._open
        if incident is None:
            return
        self._open = None
        self._timer = None
        closed_at = self.clock()
        lo = max(0.0, incident["triggered_at"] - self.config.pre_roll)
        hi = closed_at
        c = self.config
        bundle = {
            "kind": "incident_bundle",
            "schema_version": SCHEMA_VERSION,
            "incident": {
                "id": incident["id"],
                "triggered_at": incident["triggered_at"],
                "closed_at": closed_at,
                "window": [lo, hi],
                "pre_roll": c.pre_roll,
                "post_roll": c.post_roll,
                "triggers": incident["triggers"],
            },
            "spans": [
                r for r in self.spans
                if r["end"] >= lo and r["start"] <= hi
            ],
            "events": self._window(self.events, lo, hi),
            "metric_deltas": self._window(self.metric_deltas, lo, hi),
            "faults": self._window(self.faults, lo, hi),
            "health": self._window(self.health, lo, hi),
            "alerts": self._window(self.alerts, lo, hi),
            "decisions": self._window(self.decisions, lo, hi),
            "context": {
                "watch_metrics": [list(pair) for pair in c.watch_metrics],
                "triggers_enabled": list(c.triggers),
                "ring_limits": {
                    "spans": c.max_spans,
                    "events": c.max_events,
                    "metric_deltas": c.max_metric_deltas,
                    "faults": c.max_faults,
                    "health": c.max_health,
                    "alerts": c.max_alerts,
                    "decisions": c.max_decisions,
                },
            },
        }
        summary = {
            "id": incident["id"],
            "triggered_at": incident["triggered_at"],
            "closed_at": closed_at,
            "triggers": len(incident["triggers"]),
            "records": sum(
                len(bundle[section])
                for section in ("spans", "events", "metric_deltas",
                                "faults", "health", "alerts", "decisions")
            ),
            "path": None,
        }
        if self.out_dir:
            os.makedirs(self.out_dir, exist_ok=True)
            path = os.path.join(
                self.out_dir, f"incident-{incident['id']:03d}.json.gz"
            )
            write_bundle(bundle, path)
            summary["path"] = path
            self.bundle_paths.append(path)
        self.bundles.append(bundle)
        self.incidents.append(summary)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def ring_sizes(self) -> dict:
        """Current ring occupancy, for bound assertions and reports."""
        return {
            "spans": len(self.spans),
            "events": len(self.events),
            "metric_deltas": len(self.metric_deltas),
            "faults": len(self.faults),
            "health": len(self.health),
            "alerts": len(self.alerts),
            "decisions": len(self.decisions),
        }

    def dump(self) -> str:
        """The current ring contents as canonical JSONL (debug aid)."""
        return to_jsonl(
            [
                *self.spans, *self.events, *self.metric_deltas,
                *self.faults, *self.health, *self.alerts,
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "attached" if self._attached else "detached"
        return (
            f"<FlightRecorder {state} incidents={len(self.incidents)} "
            f"open={self._open is not None}>"
        )


class NullRecorder:
    """The detached path: stateless, allocation-free, shared singleton."""

    enabled = False

    __slots__ = ()

    def on_fault(self, record) -> None:
        pass

    def on_alert(self, record) -> None:
        pass

    def on_health(self, entry) -> None:
        pass

    def on_decision(self, record) -> None:
        pass

    def on_exception(self, component, exc) -> None:
        pass

    def trigger(self, reason: str = "", detail: str = "") -> None:
        return None

    def flush(self) -> None:
        pass

    def detach(self) -> None:
        pass


#: Process-wide shared singleton for the detached path.
NULL_RECORDER = NullRecorder()
