"""Simulation-time observability: metrics, tracing, and exporters.

The :class:`Observability` facade bundles a :class:`MetricsRegistry`
and a :class:`Tracer` behind one ``enabled`` switch. Every cluster owns
one (``cluster.obs``, mirrored as ``fs.obs`` and ``master.obs``),
disabled by default so instrumented hot paths cost one attribute load
and one branch.

Typical enablement::

    fs = build_deployment("octopus", spec=spec, seed=0)
    fs.obs.enable()
    ... run a workload ...
    write_jsonl(fs.obs.tracer.records, "trace.jsonl")
    print(prometheus_text(fs.obs.metrics))

Instrumented call sites follow one idiom::

    obs = self.obs
    if obs.enabled:
        obs.metrics.counter("bytes_written_total", tier=tier).inc(n)

The guard keeps the disabled path free of label-dict allocation; the
facade swaps in shared null singletons (:data:`NULL_REGISTRY`,
:data:`NULL_TRACER`) when disabled, so even unguarded calls are safe
no-ops.

See ``docs/OBSERVABILITY.md`` for the metric catalog and span taxonomy.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.analyze import (
    Trace,
    alert_report,
    analysis_json,
    analyze_trace,
    critical_path,
    read_trace,
    read_trace_file,
)
from repro.obs.chrome import (
    chrome_trace,
    chrome_trace_json,
    read_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import (
    metrics_json,
    prometheus_text,
    read_jsonl_records,
    tier_report_data,
    tier_utilization_rows,
    to_jsonl,
    validate_alert_records,
    validate_trace_records,
    write_jsonl,
    write_metrics,
)
from repro.obs.health import HealthMonitor
from repro.obs.provenance import (
    DECISION_ACTIONS,
    NULL_LEDGER,
    NullLedger,
    ProvenanceLedger,
    decision_summary,
    explain,
    explain_text,
    validate_ledger_records,
)
from repro.obs.postmortem import (
    BundleError,
    blast_radius_decisions,
    build_timeline,
    postmortem_json,
    postmortem_report,
    postmortem_text,
    read_bundle,
    validate_bundle,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    RecorderConfig,
    write_bundle,
)
from repro.obs.registry import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.slo import (
    AlertSink,
    AvailabilitySlo,
    BurnRateRule,
    LatencySlo,
    SloMonitor,
    default_read_rules,
)
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.windows import QuantileSketch, WindowedCounts, WindowedSketch

__all__ = [
    "Observability",
    "ObsCapture",
    "active_capture",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl_records",
    "validate_trace_records",
    "validate_alert_records",
    "QuantileSketch",
    "WindowedSketch",
    "WindowedCounts",
    "LatencySlo",
    "AvailabilitySlo",
    "BurnRateRule",
    "AlertSink",
    "SloMonitor",
    "HealthMonitor",
    "FlightRecorder",
    "NullRecorder",
    "RecorderConfig",
    "NULL_RECORDER",
    "ProvenanceLedger",
    "NullLedger",
    "NULL_LEDGER",
    "DECISION_ACTIONS",
    "validate_ledger_records",
    "decision_summary",
    "explain",
    "explain_text",
    "write_bundle",
    "read_bundle",
    "validate_bundle",
    "build_timeline",
    "blast_radius_decisions",
    "postmortem_report",
    "postmortem_json",
    "postmortem_text",
    "BundleError",
    "default_read_rules",
    "alert_report",
    "prometheus_text",
    "metrics_json",
    "write_metrics",
    "tier_report_data",
    "tier_utilization_rows",
    "Trace",
    "read_trace",
    "read_trace_file",
    "analyze_trace",
    "analysis_json",
    "critical_path",
    "chrome_trace",
    "chrome_trace_json",
    "read_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]


class Observability:
    """One switchable bundle of metrics + tracing for a cluster."""

    __slots__ = ("enabled", "metrics", "tracer", "recorder", "ledger",
                 "last_placement", "_clock")

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        enabled: bool = False,
    ) -> None:
        self._clock = clock
        self.enabled = False
        self.metrics: MetricsRegistry | NullRegistry = NULL_REGISTRY
        self.tracer: Tracer | NullTracer = NULL_TRACER
        #: The attached :class:`~repro.obs.recorder.FlightRecorder`, or
        #: the shared no-op singleton — instrumented sites feed it
        #: unconditionally (``obs.recorder.on_fault(...)``), so the
        #: detached path costs one attribute load and a no-op call.
        self.recorder: FlightRecorder | NullRecorder = NULL_RECORDER
        #: The attached :class:`~repro.obs.provenance.ProvenanceLedger`,
        #: or the shared no-op singleton — decision sites gate record
        #: construction on ``obs.ledger.enabled`` (one attribute load
        #: and a falsy check when detached).
        self.ledger: ProvenanceLedger | NullLedger = NULL_LEDGER
        #: Side channel: the most recent placement decision's objective
        #: scores, written by ``core.moop.place_replicas`` and read by
        #: the client stream that triggered the allocation (the two are
        #: separated by the master RPC boundary). ``None`` when the last
        #: allocation bypassed MOOP (rule-based/HDFS policies).
        self.last_placement: dict | None = None
        if enabled:
            self.enable()

    def enable(self) -> "Observability":
        """Switch on collection (idempotent; state survives re-enable)."""
        if not self.enabled:
            self.enabled = True
            self.metrics = MetricsRegistry(self._clock)
            self.tracer = Tracer(self._clock)
        return self

    def disable(self) -> "Observability":
        """Switch off collection and drop all recorded state."""
        self.enabled = False
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER
        if self.recorder is not NULL_RECORDER:
            self.recorder.detach()
        self.recorder = NULL_RECORDER
        if self.ledger is not NULL_LEDGER:
            self.ledger.detach()
        self.ledger = NULL_LEDGER
        self.last_placement = None
        return self

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0


#: Innermost active :class:`ObsCapture` scopes, outermost first.
_capture_stack: list["ObsCapture"] = []


def active_capture() -> "ObsCapture | None":
    """The innermost active capture scope, or ``None``."""
    return _capture_stack[-1] if _capture_stack else None


class ObsCapture:
    """Collect telemetry from every cluster built inside a ``with`` block.

    The experiment runners (``repro experiment fig2`` etc.) construct
    deployments internally — sometimes dozens per run — so the CLI
    cannot reach in and enable each one's observability. A capture scope
    inverts the hookup: :class:`repro.cluster.Cluster` checks
    :func:`active_capture` at construction and, inside a scope, enables
    its bundle and registers it here. On exit the capture merges every
    registered tracer into one valid record stream (span ids are
    offset per tracer so they stay unique and referentially intact) and
    every registry into one snapshot.
    """

    def __init__(self) -> None:
        self.captured: list[Observability] = []

    def __enter__(self) -> "ObsCapture":
        _capture_stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _capture_stack.pop()

    def attach(self, obs: Observability) -> None:
        """Enable ``obs`` and include it in the merged exports."""
        obs.enable()
        self.captured.append(obs)

    def merged_trace_records(self) -> list[dict]:
        """All captured records as one stream with disjoint id spaces.

        Each tracer's span/trace/parent ids are shifted by the total id
        width of the tracers captured before it, so the merged stream
        still satisfies :func:`validate_trace_records`.
        """
        merged: list[dict] = []
        offset = 0
        for obs in self.captured:
            tracer = obs.tracer
            for record in tracer.records:
                if offset:
                    record = dict(record)
                    for key in ("span_id", "trace_id", "parent_id"):
                        if record.get(key) is not None:
                            record[key] += offset
                merged.append(record)
            offset += tracer.ids_issued
        return merged

    def merged_metrics_snapshot(self) -> dict:
        """One snapshot per captured registry, as ``{"runs": [...]}``.

        A single-registry capture returns its snapshot unwrapped, so the
        common one-deployment case stays shaped like ``write_metrics``
        output.
        """
        if len(self.captured) == 1:
            return self.captured[0].metrics.snapshot()
        return {
            "runs": [
                {"run": index, **obs.metrics.snapshot()}
                for index, obs in enumerate(self.captured)
            ]
        }

    def metrics_text(self, as_json: bool) -> str:
        """Merged metrics as canonical JSON or stacked Prometheus text."""
        import json as _json

        if as_json:
            from repro.obs.export import SCHEMA_VERSION

            document = {
                "schema_version": SCHEMA_VERSION,
                **self.merged_metrics_snapshot(),
            }
            return _json.dumps(document, sort_keys=True, indent=2) + "\n"
        sections = []
        for index, obs in enumerate(self.captured):
            sections.append(f"# run {index}\n" + prometheus_text(obs.metrics))
        return "".join(sections)
