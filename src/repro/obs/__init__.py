"""Simulation-time observability: metrics, tracing, and exporters.

The :class:`Observability` facade bundles a :class:`MetricsRegistry`
and a :class:`Tracer` behind one ``enabled`` switch. Every cluster owns
one (``cluster.obs``, mirrored as ``fs.obs`` and ``master.obs``),
disabled by default so instrumented hot paths cost one attribute load
and one branch.

Typical enablement::

    fs = build_deployment("octopus", spec=spec, seed=0)
    fs.obs.enable()
    ... run a workload ...
    write_jsonl(fs.obs.tracer.records, "trace.jsonl")
    print(prometheus_text(fs.obs.metrics))

Instrumented call sites follow one idiom::

    obs = self.obs
    if obs.enabled:
        obs.metrics.counter("bytes_written_total", tier=tier).inc(n)

The guard keeps the disabled path free of label-dict allocation; the
facade swaps in shared null singletons (:data:`NULL_REGISTRY`,
:data:`NULL_TRACER`) when disabled, so even unguarded calls are safe
no-ops.

See ``docs/OBSERVABILITY.md`` for the metric catalog and span taxonomy.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.export import (
    metrics_json,
    prometheus_text,
    tier_report_data,
    tier_utilization_rows,
    to_jsonl,
    validate_trace_records,
    write_jsonl,
    write_metrics,
)
from repro.obs.registry import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "to_jsonl",
    "write_jsonl",
    "validate_trace_records",
    "prometheus_text",
    "metrics_json",
    "write_metrics",
    "tier_report_data",
    "tier_utilization_rows",
]


class Observability:
    """One switchable bundle of metrics + tracing for a cluster."""

    __slots__ = ("enabled", "metrics", "tracer", "last_placement", "_clock")

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        enabled: bool = False,
    ) -> None:
        self._clock = clock
        self.enabled = False
        self.metrics: MetricsRegistry | NullRegistry = NULL_REGISTRY
        self.tracer: Tracer | NullTracer = NULL_TRACER
        #: Side channel: the most recent placement decision's objective
        #: scores, written by ``core.moop.place_replicas`` and read by
        #: the client stream that triggered the allocation (the two are
        #: separated by the master RPC boundary). ``None`` when the last
        #: allocation bypassed MOOP (rule-based/HDFS policies).
        self.last_placement: dict | None = None
        if enabled:
            self.enable()

    def enable(self) -> "Observability":
        """Switch on collection (idempotent; state survives re-enable)."""
        if not self.enabled:
            self.enabled = True
            self.metrics = MetricsRegistry(self._clock)
            self.tracer = Tracer(self._clock)
        return self

    def disable(self) -> "Observability":
        """Switch off collection and drop all recorded state."""
        self.enabled = False
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER
        self.last_placement = None
        return self

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0
