"""Streaming windowed aggregation over simulation time.

The offline analytics in :mod:`repro.obs.analyze` answer "where did the
time go" *after* a run; this module provides the primitives that answer
"how are we doing *right now*" while the run is still in flight:

* :class:`QuantileSketch` — a bounded-error streaming quantile sketch
  in the DDSketch mold: logarithmically-spaced fixed buckets with
  relative accuracy ``alpha``, integer bucket counts (so the sketch is
  **insertion-order independent**), and cheap lossless ``merge``. The
  estimate returned for any quantile is within ``alpha`` relative error
  of the exact rank statistic, a bound the Hypothesis property suite
  checks against brute-force sorting.
* :class:`WindowedSketch` — a ring of per-time-bucket sketches over the
  simulation clock. Observations land in the tumbling bucket covering
  ``now``; a *sliding* query merges the buckets overlapping
  ``(now - window, now]``, so one structure serves every window width
  up to its retention. Window edges are quantized to ``bucket_width``
  — the documented granularity of detection timing.
* :class:`WindowedCounts` — the same ring for good/bad event counts,
  yielding windowed error rates and, through :func:`burn_rate`, the
  SRE-style error-budget burn rate the alert rules in
  :mod:`repro.obs.slo` evaluate.

Everything is driven by an injected ``clock`` (``engine.now``), holds
only integers and input floats, and never reads the wall clock — two
identically-seeded runs build identical window state at every tick.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "QuantileSketch",
    "WindowedSketch",
    "WindowedCounts",
    "burn_rate",
]

#: Default relative-error bound for quantile sketches.
DEFAULT_ALPHA = 0.01


class QuantileSketch:
    """Fixed-bucket, mergeable, order-independent quantile sketch.

    Non-negative values only (the sketch tracks latencies and sizes).
    Positive values map to bucket ``ceil(log_gamma(value))`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; each bucket's midpoint
    estimate ``2 * gamma^k / (gamma + 1)`` is within ``alpha`` relative
    error of every value the bucket covers. Zeros get their own exact
    bucket. State is bucket counts (ints) plus exact ``min``/``max``,
    so two sketches fed the same multiset of values in any order are
    equal — the determinism the property suite asserts.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "_buckets", "_zeros",
                 "count", "min", "max")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def add(self, value: float, count: int = 1) -> None:
        if value < 0:
            raise ValueError(f"sketch values must be >= 0, got {value}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if value == 0.0:
            self._zeros += count
        else:
            key = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[key] = self._buckets.get(key, 0) + count
        self.count += count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (alphas must match)."""
        if other.alpha != self.alpha:
            raise ConfigurationError(
                f"cannot merge sketches with alpha {self.alpha} and "
                f"{other.alpha}"
            )
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self._zeros += other._zeros
        self.count += other.count
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile estimate; ``None`` on an empty sketch.

        Walks buckets in value order to the one containing the item of
        rank ``floor(q * (count - 1))`` (0-indexed) and returns that
        bucket's midpoint estimate, clamped to the exact ``[min, max]``
        — clamping only ever moves the estimate *toward* the true
        value, so the ``alpha`` relative-error bound survives it.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        rank = math.floor(q * (self.count - 1))  # 0-indexed target
        if rank < self._zeros:
            return 0.0
        running = self._zeros
        for key in sorted(self._buckets):
            running += self._buckets[key]
            if running > rank:
                estimate = 2.0 * self._gamma ** key / (self._gamma + 1.0)
                return min(max(estimate, self.min), self.max)
        return self.max  # unreachable unless float drift; safe answer

    def quantiles(self) -> dict[str, float]:
        """Snapshot percentiles p50/p90/p99 (empty dict if no data)."""
        if self.count == 0:
            return {}
        return {
            "p50": self.quantile(0.50),  # type: ignore[dict-item]
            "p90": self.quantile(0.90),  # type: ignore[dict-item]
            "p99": self.quantile(0.99),  # type: ignore[dict-item]
        }

    def data(self) -> dict:
        """JSON-serializable, deterministic state summary."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "quantiles": self.quantiles(),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.alpha == other.alpha
            and self.count == other.count
            and self._zeros == other._zeros
            and self.min == other.min
            and self.max == other.max
            and self._buckets == other._buckets
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch alpha={self.alpha} count={self.count} "
            f"buckets={len(self._buckets)}>"
        )


class _TimeBucketRing:
    """Shared machinery: per-tumbling-bucket state with retention.

    Bucket ``i`` covers sim time ``[i * width, (i + 1) * width)``.
    Buckets older than ``retention`` behind the newest write are
    evicted, so memory stays bounded by ``retention / width`` entries
    regardless of run length.
    """

    __slots__ = ("clock", "width", "_keep", "_entries")

    def __init__(
        self,
        clock: Callable[[], float],
        bucket_width: float,
        retention: float,
    ) -> None:
        if bucket_width <= 0:
            raise ConfigurationError("bucket_width must be positive")
        if retention < bucket_width:
            raise ConfigurationError("retention must cover >= one bucket")
        self.clock = clock
        self.width = float(bucket_width)
        self._keep = int(math.ceil(retention / bucket_width)) + 1
        self._entries: dict[int, object] = {}

    def _bucket_index(self, t: float) -> int:
        return int(t // self.width)

    def _entry(self, factory) -> object:
        index = self._bucket_index(self.clock())
        entry = self._entries.get(index)
        if entry is None:
            entry = factory()
            self._entries[index] = entry
            floor = index - self._keep
            for stale in [i for i in self._entries if i < floor]:
                del self._entries[stale]
        return entry

    def _window_entries(self, window: float, now: float | None) -> list:
        """Entries of the buckets overlapping ``(now - window, now]``."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        at = self.clock() if now is None else now
        last = self._bucket_index(at)
        first = self._bucket_index(max(0.0, at - window))
        return [
            self._entries[i]
            for i in range(first, last + 1)
            if i in self._entries
        ]


class WindowedSketch(_TimeBucketRing):
    """Sliding-window quantiles: one :class:`QuantileSketch` per bucket."""

    __slots__ = ("alpha",)

    def __init__(
        self,
        clock: Callable[[], float],
        bucket_width: float,
        retention: float,
        alpha: float = DEFAULT_ALPHA,
    ) -> None:
        super().__init__(clock, bucket_width, retention)
        self.alpha = alpha

    def observe(self, value: float) -> None:
        self._entry(lambda: QuantileSketch(self.alpha)).add(value)

    def sketch(self, window: float, now: float | None = None) -> QuantileSketch:
        """The merged sketch over ``(now - window, now]``."""
        merged = QuantileSketch(self.alpha)
        for entry in self._window_entries(window, now):
            merged.merge(entry)
        return merged

    def quantile(
        self, q: float, window: float, now: float | None = None
    ) -> float | None:
        return self.sketch(window, now=now).quantile(q)


class WindowedCounts(_TimeBucketRing):
    """Sliding-window good/bad event counts → windowed error rates."""

    __slots__ = ()

    def record(self, bad: bool, count: float = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        entry = self._entry(lambda: [0, 0])
        entry[1 if bad else 0] += count

    def totals(
        self, window: float, now: float | None = None
    ) -> tuple[float, float]:
        """``(good, bad)`` totals over ``(now - window, now]``."""
        good = bad = 0
        for entry in self._window_entries(window, now):
            good += entry[0]
            bad += entry[1]
        return good, bad

    def error_rate(
        self, window: float, now: float | None = None
    ) -> float | None:
        """Bad fraction over the window; ``None`` with no events."""
        good, bad = self.totals(window, now=now)
        total = good + bad
        return bad / total if total else None


def burn_rate(error_rate: float | None, budget: float) -> float:
    """How many times faster than sustainable the budget is burning.

    ``budget`` is the SLO's allowed error fraction (``1 - target``); a
    burn rate of 1.0 spends exactly the budget, ``1/budget`` means
    every event is an error. ``None``/empty windows burn nothing.
    """
    if budget <= 0:
        raise ConfigurationError(f"error budget must be positive, got {budget}")
    if error_rate is None:
        return 0.0
    return error_rate / budget
