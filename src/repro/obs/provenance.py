"""Decision provenance: the "why is this replica here?" ledger.

Every replica in the system exists because some decision put it there —
the MOOP placement solver scored it above its rivals, the replication
manager re-created it after a fault, the tiering policy promoted its
file, the balancer shuffled it to an emptier medium. The rest of the
observability stack records *what happened and how slow it was*; the
:class:`ProvenanceLedger` records *why*: one compact, append-only
decision record per replica-affecting action, causally linked to the
span that made it and the incident (if any) that was open at the time.

The ledger follows the flight recorder's determinism contract exactly:

* **Pure observer** — it mints no metric instruments and emits no
  trace records, so trace/metrics/Prometheus exports of a run with an
  attached ledger are byte-identical to a run without one.
* **NULL-singleton detached path** — instrumented sites feed
  ``obs.ledger`` unconditionally; detached, that is the shared
  :data:`NULL_LEDGER` whose methods are no-ops, so every feed costs one
  attribute load and a falsy ``enabled`` check (expensive record
  construction is gated on ``obs.ledger.enabled`` at the call site).
* **Byte-stable exports** — records carry only simulation-time
  timestamps and seed-stable identifiers (``path#index``, medium ids,
  deterministic span ids — never process-global block ids), and
  :meth:`ProvenanceLedger.export` serializes canonically, so two
  identically seeded runs dump byte-identical JSONL(.gz) ledgers.

On top of the raw stream, :func:`explain` rebuilds per-replica decision
chains — "why-here" (the causal chain that put a replica on its
medium: a tiering promotion → the vector change → the repair placement
that created it) and "why-not" (the score delta between the chosen
medium and the best rejected alternative of each placement entry).
``repro explain <path> --ledger ledger.jsonl`` is the CLI surface.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs.export import (
    schema_version_problem,
    write_jsonl,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracing import Span
    from repro.sim.faults import FaultRecord

__all__ = [
    "ProvenanceLedger",
    "NullLedger",
    "NULL_LEDGER",
    "DECISION_ACTIONS",
    "validate_ledger_records",
    "decision_summary",
    "explain",
    "explain_text",
]

#: Every decision record's ``action`` is one of these.
DECISION_ACTIONS = (
    "placement",
    "repair",
    "tiering",
    "balancer_move",
    "set_replication",
    "replica_removed",
    "delete",
)

#: Required keys per action, beyond the base record keys.
_ACTION_KEYS = {
    "placement": ("block", "vector", "cause", "targets"),
    "repair": ("block", "destination", "source", "context"),
    "tiering": ("tiering_kind", "tier", "heat", "outcome", "policy", "round"),
    "balancer_move": ("block", "source", "destination", "tier", "bytes"),
    "set_replication": ("old", "new", "outcome"),
    "replica_removed": ("block", "medium", "tier", "cause"),
    "delete": ("blocks",),
}

_BASE_KEYS = ("kind", "seq", "time", "action", "path")

#: How many recent fault/liveness context entries a repair record
#: snapshots (the "triggering fault" evidence).
_CONTEXT_DEPTH = 5


class ProvenanceLedger:
    """Bounded, append-only decision records for replica-affecting actions.

    Construct with an enabled :class:`~repro.obs.Observability` bundle
    and call :meth:`attach`; every instrumented decision site then feeds
    it through ``obs.ledger``. ``max_records`` bounds memory — the
    oldest records fall off and are counted in :attr:`dropped`.
    """

    enabled = True

    def __init__(self, obs, max_records: int = 100_000) -> None:
        if not getattr(obs, "enabled", False):
            raise ConfigurationError(
                "ProvenanceLedger needs observability enabled; call "
                "obs.enable() before constructing the ledger"
            )
        if max_records < 1:
            raise ConfigurationError("max_records must be >= 1")
        self.obs = obs
        self.max_records = max_records
        self.records: deque = deque(maxlen=max_records)
        #: Records evicted by the bound (the sequence numbers still
        #: count up, so gaps are visible in the export).
        self.dropped = 0
        self.seq = 0
        #: Recent fault/liveness happenings, snapshot into repair
        #: records as their triggering context.
        self._context: deque = deque(maxlen=32)
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle (mirrors FlightRecorder.attach/detach)
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._attached

    def attach(self) -> "ProvenanceLedger":
        """Become ``obs.ledger`` so decision sites start feeding us."""
        if self._attached:
            raise ConfigurationError("ledger already attached")
        if getattr(self.obs.ledger, "enabled", False):
            raise ConfigurationError(
                "another ProvenanceLedger is already attached to this "
                "obs bundle; detach it first"
            )
        self._attached = True
        self.obs.ledger = self
        return self

    def detach(self) -> None:
        """Stop observing (idempotent); recorded state survives."""
        if not self._attached:
            return
        self._attached = False
        if self.obs.ledger is self:
            self.obs.ledger = NULL_LEDGER

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------
    def _base(self, action: str, path: str, span: "Span | None") -> dict:
        if span is None:
            span = self.obs.tracer.current
        recorder = self.obs.recorder
        open_incident = (
            recorder.open_incident
            if getattr(recorder, "enabled", False)
            else None
        )
        self.seq += 1
        return {
            "kind": "decision",
            "seq": self.seq,
            "time": self.obs.now(),
            "action": action,
            "path": path,
            "span_id": span.span_id if span is not None else None,
            "trace_id": span.trace_id if span is not None else None,
            "incident": open_incident["id"] if open_incident else None,
        }

    def _append(self, record: dict) -> dict:
        if len(self.records) == self.max_records:
            self.dropped += 1
        self.records.append(record)
        # Mirror into the flight recorder's decisions ring so incident
        # bundles carry the decisions inside their window (no-op when
        # the recorder is detached).
        self.obs.recorder.on_decision(record)
        return record

    def recent_context(self) -> list[dict]:
        """The last few fault/liveness entries (for repair records)."""
        entries = list(self._context)
        return [dict(entry) for entry in entries[-_CONTEXT_DEPTH:]]

    # ------------------------------------------------------------------
    # Context feeds (not decisions themselves; evidence for them)
    # ------------------------------------------------------------------
    def on_fault(self, record: "FaultRecord") -> None:
        """Fed by :meth:`repro.sim.faults.FaultInjector._record`."""
        self._context.append(
            {
                "time": record.time,
                "kind": "fault." + record.kind,
                "target": record.target,
                "detail": record.detail,
            }
        )

    def on_liveness(self, verdict: str, worker: str) -> None:
        """Fed by :meth:`~repro.fs.master.Master.check_worker_liveness`."""
        self._context.append(
            {
                "time": self.obs.now(),
                "kind": "worker." + verdict,
                "target": worker,
                "detail": "",
            }
        )

    # ------------------------------------------------------------------
    # Decision feeds
    # ------------------------------------------------------------------
    def on_placement(
        self,
        path: str,
        block: str,
        vector: str,
        cause: str,
        targets: Sequence,
        decision: dict | None,
        span: "Span | None" = None,
    ) -> dict:
        """One initial-placement decision (``cause="allocate"``).

        ``decision`` is ``obs.last_placement`` — ``None`` for policies
        that bypass the MOOP solver (rule-based, stock HDFS), in which
        case the record still pins down *where* but carries no scores.
        """
        record = self._base("placement", path, span)
        record.update(
            block=block,
            vector=vector,
            cause=cause,
            targets=[
                {
                    "medium": m.medium_id,
                    "tier": m.tier_name,
                    "node": m.node.name,
                }
                for m in targets
            ],
        )
        if decision is not None:
            record["score"] = decision["score"]
            record["objectives"] = dict(decision["objectives"])
            record["entries"] = decision.get("entries")
        return self._append(record)

    def on_repair(
        self,
        path: str,
        block: str,
        tier: str | None,
        source: str,
        destination: str,
        destination_tier: str,
        placement: dict | None,
        context: list[dict],
        span: "Span | None" = None,
    ) -> dict:
        """One re-replication copy, with its triggering context."""
        record = self._base("repair", path, span)
        record.update(
            block=block,
            tier=tier,
            source=source,
            destination=destination,
            destination_tier=destination_tier,
            context=context,
            outcome="scheduled",
        )
        if placement is not None:
            record["score"] = placement["score"]
            record["entries"] = placement.get("entries")
        return self._append(record)

    def on_repair_outcome(self, record: dict | None, outcome: str) -> None:
        """Resolve a repair record once its copy finished or failed."""
        if record is not None:
            record["outcome"] = outcome

    def on_tiering(
        self,
        path: str,
        kind: str,
        tier: str,
        heat: float,
        outcome: str,
        detail: str,
        policy,
        round_number: int,
        span: "Span | None" = None,
    ) -> dict:
        """One tiering decision: policy identity, thresholds, budget."""
        record = self._base("tiering", path, span)
        record.update(
            tiering_kind=kind,
            tier=tier,
            heat=round(heat, 6),
            outcome=outcome,
            detail=detail,
            policy=policy.name,
            round=round_number,
        )
        thresholds = {}
        for attr in (
            "promote_heat",
            "demote_heat",
            "movement_budget",
            "min_residency",
            "cooldown",
            "headroom",
        ):
            value = getattr(policy, attr, None)
            if value is not None:
                thresholds[attr] = value
        if thresholds:
            record["thresholds"] = thresholds
        return self._append(record)

    def on_balancer_move(
        self,
        path: str,
        block: str,
        source: str,
        destination: str,
        tier: str,
        nbytes: int,
        span: "Span | None" = None,
    ) -> dict:
        record = self._base("balancer_move", path, span)
        record.update(
            block=block,
            source=source,
            destination=destination,
            tier=tier,
            bytes=nbytes,
        )
        return self._append(record)

    def on_set_replication(
        self,
        path: str,
        old: str,
        new: str,
        cas: bool,
        outcome: str = "applied",
        span: "Span | None" = None,
    ) -> dict:
        record = self._base("set_replication", path, span)
        record.update(old=old, new=new, cas=cas, outcome=outcome)
        return self._append(record)

    def on_replica_removed(
        self,
        path: str,
        block: str,
        medium: str,
        tier: str,
        cause: str,
        span: "Span | None" = None,
    ) -> dict:
        record = self._base("replica_removed", path, span)
        record.update(block=block, medium=medium, tier=tier, cause=cause)
        return self._append(record)

    def on_delete(
        self, path: str, blocks: int, span: "Span | None" = None
    ) -> dict:
        record = self._base("delete", path, span)
        record.update(blocks=blocks)
        return self._append(record)

    # ------------------------------------------------------------------
    # Export / introspection
    # ------------------------------------------------------------------
    def export(self, path: str) -> None:
        """Write the ledger as schema-versioned JSONL (``.gz`` compresses
        byte-deterministically, like every other export)."""
        write_jsonl(list(self.records), path, stream="ledger")

    def records_for(self, path: str) -> list[dict]:
        return [r for r in self.records if r.get("path") == path]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "attached" if self._attached else "detached"
        return (
            f"<ProvenanceLedger {state} records={len(self.records)} "
            f"dropped={self.dropped}>"
        )


class NullLedger:
    """The detached path: stateless, allocation-free, shared singleton."""

    enabled = False

    __slots__ = ()

    def on_fault(self, record) -> None:
        pass

    def on_liveness(self, verdict, worker) -> None:
        pass

    def on_placement(self, *args, **kwargs) -> None:
        return None

    def on_repair(self, *args, **kwargs) -> None:
        return None

    def on_repair_outcome(self, record, outcome) -> None:
        pass

    def on_tiering(self, *args, **kwargs) -> None:
        return None

    def on_balancer_move(self, *args, **kwargs) -> None:
        return None

    def on_set_replication(self, *args, **kwargs) -> None:
        return None

    def on_replica_removed(self, *args, **kwargs) -> None:
        return None

    def on_delete(self, *args, **kwargs) -> None:
        return None

    def recent_context(self) -> list:
        return []

    def detach(self) -> None:
        pass


#: Process-wide shared singleton for the detached path.
NULL_LEDGER = NullLedger()


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_ledger_records(records: Iterable[dict]) -> list[str]:
    """Schema-check ledger records; return a list of problems (empty = ok).

    Checks per record: kind/action, the base keys, the per-action
    required keys; stream-wide: sequence numbers strictly increase and
    timestamps never go backwards.
    """
    problems: list[str] = []
    last_seq: int | None = None
    last_time: float | None = None
    for index, record in enumerate(records):
        kind = record.get("kind")
        if kind == "header":
            problem = schema_version_problem(record.get("schema_version"))
            if problem:
                problems.append(f"record {index}: {problem}")
            continue
        if kind != "decision":
            problems.append(f"record {index}: kind {kind!r} != 'decision'")
            continue
        missing = set(_BASE_KEYS) - record.keys()
        if missing:
            problems.append(f"record {index}: missing {sorted(missing)}")
            continue
        action = record["action"]
        if action not in DECISION_ACTIONS:
            problems.append(f"record {index}: unknown action {action!r}")
            continue
        missing = set(_ACTION_KEYS[action]) - record.keys()
        if missing:
            problems.append(
                f"record {index}: {action} missing {sorted(missing)}"
            )
        seq = record["seq"]
        if last_seq is not None and seq <= last_seq:
            problems.append(
                f"record {index}: seq {seq} does not increase (after "
                f"{last_seq})"
            )
        last_seq = seq
        time = record["time"]
        if last_time is not None and time < last_time:
            problems.append(f"record {index}: time goes backwards")
        last_time = time
    return problems


# ----------------------------------------------------------------------
# The explain query layer
# ----------------------------------------------------------------------
def _why_not(entries: list | None) -> list[dict]:
    """Per placement entry: the chosen option vs the best rejected one."""
    out: list[dict] = []
    for entry in entries or ():
        alternatives = entry.get("alternatives") or []
        item = {
            "chosen": {
                "medium": entry["medium"],
                "tier": entry["tier"],
                "score": entry["score"],
            },
            "required_tier": entry.get("required_tier"),
            "options_considered": entry.get("options_considered"),
        }
        if alternatives:
            best = alternatives[0]
            item["best_rejected"] = dict(best)
            # The chosen option minimizes the global-criterion score, so
            # the delta is how much worse the runner-up would have been.
            item["delta"] = best["score"] - entry["score"]
        out.append(item)
    return out


def decision_summary(record: dict) -> str:
    """One human line per record, used by timeline and text renderings."""
    action = record["action"]
    if action == "placement":
        tiers = "+".join(t["tier"] for t in record.get("targets", ()))
        score = record.get("score")
        score_text = f" score={score:.4f}" if score is not None else ""
        return (
            f"{record.get('cause', 'allocate')} {record.get('block', '')} "
            f"vector={record.get('vector', '?')} -> [{tiers}]{score_text}"
        )
    if action == "repair":
        context = record.get("context") or []
        trigger = context[-1]["kind"] if context else "unknown"
        return (
            f"re-replicate {record.get('block', '')} -> "
            f"{record.get('destination', '?')} "
            f"({record.get('destination_tier', '?')}) "
            f"[{record.get('outcome', '?')}] triggered by {trigger}"
        )
    if action == "tiering":
        thresholds = record.get("thresholds") or {}
        bands = (
            f" promote>{thresholds['promote_heat']}"
            f" demote<={thresholds['demote_heat']}"
            if "promote_heat" in thresholds
            else ""
        )
        return (
            f"{record.get('tiering_kind', '?')} to {record.get('tier', '?')} "
            f"heat={record.get('heat', 0)} round={record.get('round', '?')} "
            f"policy={record.get('policy', '?')}{bands} "
            f"[{record.get('outcome', '?')}]"
        )
    if action == "balancer_move":
        return (
            f"balance {record.get('block', '')} "
            f"{record.get('source', '?')} -> {record.get('destination', '?')} "
            f"({record.get('bytes', 0)} bytes)"
        )
    if action == "set_replication":
        cas = " (CAS)" if record.get("cas") else ""
        return (
            f"vector {record.get('old', '?')} -> {record.get('new', '?')}"
            f"{cas} [{record.get('outcome', '?')}]"
        )
    if action == "replica_removed":
        return (
            f"remove {record.get('block', '')} from "
            f"{record.get('medium', '?')} ({record.get('cause', '?')})"
        )
    if action == "delete":
        return f"delete ({record.get('blocks', 0)} block(s) freed)"
    return action


def explain(records: Iterable[dict], path: str) -> dict:
    """Rebuild the decision chains that shaped ``path``'s replicas.

    A pure function of an exported record stream (headers tolerated):
    filters the records touching ``path``, replays them in sequence
    order, and returns, per destination medium, the causal chain that
    put (or re-put) a replica there — for a repair that follows a
    tiering promotion and its vector change, the chain contains all
    three — plus "why-not" score deltas for every scored placement.
    """
    mine = sorted(
        (
            r
            for r in records
            if r.get("kind") == "decision" and r.get("path") == path
        ),
        key=lambda r: r["seq"],
    )
    replicas: dict[str, dict] = {}
    #: Latest applied vector change / tiering action, for chain linking.
    last_vector_change: dict | None = None
    last_tiering: dict | None = None

    def born(medium: str, tier: str, record: dict, chain: list[dict]) -> None:
        replicas[medium] = {
            "medium": medium,
            "tier": tier,
            "created_at": record["time"],
            "created_by": record["action"],
            "chain": [
                {
                    "seq": c["seq"],
                    "time": c["time"],
                    "action": c["action"],
                    "summary": decision_summary(c),
                }
                for c in chain
            ],
            "removed": None,
        }

    def removed(medium: str, record: dict, cause: str) -> None:
        entry = replicas.get(medium)
        if entry is not None and entry["removed"] is None:
            entry["removed"] = {
                "seq": record["seq"],
                "time": record["time"],
                "cause": cause,
            }

    for record in mine:
        action = record["action"]
        if action == "placement":
            for target in record.get("targets", ()):
                born(target["medium"], target["tier"], record, [record])
        elif action == "repair":
            if record.get("outcome") == "failed":
                continue  # no replica materialized; timeline still shows it
            chain: list[dict] = []
            tier = record.get("destination_tier")
            if (
                last_tiering is not None
                and last_tiering.get("tier") == tier
                and last_tiering.get("outcome") == "applied"
            ):
                chain.append(last_tiering)
            if last_vector_change is not None:
                chain.append(last_vector_change)
            chain.append(record)
            born(record["destination"], tier, record, chain)
        elif action == "tiering":
            last_tiering = record
        elif action == "set_replication":
            if record.get("outcome") == "applied":
                last_vector_change = record
        elif action == "balancer_move":
            removed(record["source"], record, "balancer_move")
            born(
                record["destination"], record.get("tier", "?"), record,
                [record],
            )
        elif action == "replica_removed":
            removed(record["medium"], record, record.get("cause", "removed"))
        elif action == "delete":
            for medium in replicas:
                removed(medium, record, "file_deleted")

    placements = [
        r for r in mine if r["action"] in ("placement", "repair")
        and r.get("entries")
    ]
    why_not = [
        {
            "seq": r["seq"],
            "time": r["time"],
            "action": r["action"],
            "entries": _why_not(r.get("entries")),
        }
        for r in placements
    ]
    return {
        "path": path,
        "records": len(mine),
        "timeline": [
            {
                "seq": r["seq"],
                "time": r["time"],
                "action": r["action"],
                "incident": r.get("incident"),
                "summary": decision_summary(r),
            }
            for r in mine
        ],
        "replicas": [
            replicas[medium] for medium in sorted(replicas)
        ],
        "why_not": why_not,
    }


def explain_text(result: dict) -> str:
    """The human rendering ``repro explain`` prints by default."""
    lines = [
        f"{result['path']}: {result['records']} decision record(s)",
        "",
        "timeline:",
    ]
    for entry in result["timeline"]:
        incident = (
            f"  [incident #{entry['incident']}]"
            if entry.get("incident") is not None
            else ""
        )
        lines.append(
            f"  {entry['time']:9.3f}s  #{entry['seq']:<5d} "
            f"{entry['action']:<16s} {entry['summary']}{incident}"
        )
    lines.append("")
    lines.append("replicas (why-here):")
    if not result["replicas"]:
        lines.append("  (no replica-creating decisions recorded)")
    for replica in result["replicas"]:
        status = (
            f"removed at {replica['removed']['time']:.3f}s "
            f"({replica['removed']['cause']})"
            if replica["removed"]
            else "present"
        )
        lines.append(
            f"  {replica['medium']} ({replica['tier']}) — "
            f"created by {replica['created_by']} at "
            f"{replica['created_at']:.3f}s — {status}"
        )
        for link in replica["chain"]:
            lines.append(
                f"      <- #{link['seq']} {link['action']}: {link['summary']}"
            )
    if result["why_not"]:
        lines.append("")
        lines.append("why-not (chosen vs best rejected alternative):")
        for decision in result["why_not"]:
            lines.append(
                f"  #{decision['seq']} {decision['action']} at "
                f"{decision['time']:.3f}s:"
            )
            for entry in decision["entries"]:
                chosen = entry["chosen"]
                rejected = entry.get("best_rejected")
                if rejected is None:
                    lines.append(
                        f"    {chosen['medium']} ({chosen['tier']}) "
                        f"score={chosen['score']:.4f} — no alternative "
                        "survived pruning"
                    )
                else:
                    lines.append(
                        f"    {chosen['medium']} ({chosen['tier']}) "
                        f"score={chosen['score']:.4f} beat "
                        f"{rejected['medium']} ({rejected['tier']}) "
                        f"score={rejected['score']:.4f} "
                        f"(delta {entry['delta']:+.4f})"
                    )
    return "\n".join(lines) + "\n"
