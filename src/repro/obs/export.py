"""Exporters: JSONL trace logs, Prometheus text, tier report tables.

All serialization is deterministic: dict keys are sorted, instruments
are emitted in registry order, and floats pass through ``repr`` via
``json.dumps`` — so two identically-seeded simulation runs produce
byte-identical exports.
"""

from __future__ import annotations

import gzip
import json
from typing import IO, TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.system import OctopusFileSystem
    from repro.obs.registry import MetricsRegistry

#: The export format version stamped on every JSONL header and JSON
#: document this package writes. Bump the major on breaking layout
#: changes; readers accept any minor of the current major and reject
#: newer majors with a clear error instead of a cryptic parse failure.
SCHEMA_VERSION = "1.0"

#: The highest major version the readers in this tree understand.
SCHEMA_MAJOR = 1


def header_record(stream: str | None = None) -> dict:
    """The header line every JSONL export starts with."""
    record = {"kind": "header", "schema_version": SCHEMA_VERSION}
    if stream:
        record["stream"] = stream
    return record


def schema_version_problem(version: object) -> str | None:
    """Why ``version`` cannot be read by this tree (``None`` = fine)."""
    if version is None:
        return "header is missing schema_version"
    try:
        major = int(str(version).split(".", 1)[0])
    except ValueError:
        return f"unparseable schema_version {version!r}"
    if major > SCHEMA_MAJOR:
        return (
            f"schema_version {version} is newer than the supported "
            f"{SCHEMA_MAJOR}.x; upgrade this tool to read it"
        )
    return None


def _write_text(text: str, path: str) -> None:
    """Write text to ``path``, gzip-compressed when it ends in ``.gz``.

    The gzip stream is built with ``mtime=0`` and no embedded filename,
    so compressed artifacts depend only on their content — as
    byte-deterministic as the plain-text ones.
    """
    if path.endswith(".gz"):
        with open(path, "wb") as raw:
            with gzip.GzipFile(
                fileobj=raw, mode="wb", mtime=0, filename=""
            ) as handle:
                handle.write(text.encode("utf-8"))
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


# ----------------------------------------------------------------------
# JSONL trace export
# ----------------------------------------------------------------------
def to_jsonl(records: Iterable[dict]) -> str:
    """Serialize trace records, one canonical JSON object per line."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    )


def write_jsonl(
    records: Iterable[dict], path: str, stream: str | None = None
) -> None:
    """Write records as JSONL behind a ``schema_version`` header line."""
    _write_text(to_jsonl([header_record(stream), *records]), path)


def read_jsonl_records(path: str) -> list[dict]:
    """Read a JSONL export back, checking and stripping its header.

    A path ending in ``.gz`` is transparently gunzipped. Raises
    :class:`ValueError` on malformed lines or a header whose major
    schema version is newer than this tree supports. Headerless files
    (pre-versioning exports) read fine.
    """
    if path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    records: list[dict] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}: line {lineno}: invalid JSON ({exc})")
        if not isinstance(record, dict):
            raise ValueError(f"{path}: line {lineno}: not a JSON object")
        records.append(record)
    if records and records[0].get("kind") == "header":
        header = records.pop(0)
        problem = schema_version_problem(header.get("schema_version"))
        if problem:
            raise ValueError(f"{path}: {problem}")
    return records


def validate_trace_records(records: Iterable[dict]) -> list[str]:
    """Schema-check trace records; return a list of problems (empty = ok).

    Checks per record: required keys for its ``kind``, and that every
    non-root ``parent_id``/``trace_id`` refers to a span that appears in
    the stream.
    """
    problems: list[str] = []
    span_ids: set[int] = set()
    trace_ids: set[int] = set()
    materialized = list(records)
    for index, record in enumerate(materialized):
        kind = record.get("kind")
        if kind == "header":
            problem = schema_version_problem(record.get("schema_version"))
            if problem:
                problems.append(f"record {index}: {problem}")
            continue
        if kind == "span":
            missing = {"name", "span_id", "trace_id", "parent_id", "start",
                       "end", "status"} - record.keys()
            if missing:
                problems.append(f"record {index}: span missing {sorted(missing)}")
                continue
            span_ids.add(record["span_id"])
            trace_ids.add(record["trace_id"])
            if record["end"] < record["start"]:
                problems.append(f"record {index}: span ends before it starts")
        elif kind == "event":
            missing = {"name", "time", "trace_id", "parent_id"} - record.keys()
            if missing:
                problems.append(
                    f"record {index}: event missing {sorted(missing)}"
                )
        else:
            problems.append(f"record {index}: unknown kind {kind!r}")
    for index, record in enumerate(materialized):
        parent = record.get("parent_id")
        if parent is not None and parent not in span_ids:
            problems.append(
                f"record {index}: parent_id {parent} not in stream"
            )
        trace = record.get("trace_id")
        if trace is not None and trace not in trace_ids:
            problems.append(f"record {index}: trace_id {trace} not in stream")
    return problems


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels, extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: "MetricsRegistry") -> str:
    """Render the registry in the Prometheus text exposition format.

    Time-series instruments are exposed as gauges holding their last
    sample (the full series only exists in the JSON snapshot).
    """
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in registry.instruments():
        name = _prom_name(instrument.name)
        kind = instrument.kind
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram", "timeseries": "gauge"}[kind]
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {prom_type}")
        if kind == "counter" or kind == "gauge":
            lines.append(
                f"{name}{_prom_labels(instrument.labels)} "
                f"{_prom_value(instrument.value)}"
            )
        elif kind == "timeseries":
            last = instrument.last
            lines.append(
                f"{name}{_prom_labels(instrument.labels)} "
                f"{_prom_value(last if last is not None else 0.0)}"
            )
        elif kind == "histogram":
            for bound, count in instrument.cumulative_buckets():
                le = "+Inf" if bound == float("inf") else _prom_value(bound)
                le_label = 'le="' + le + '"'
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(instrument.labels, le_label)} {count}"
                )
            lines.append(
                f"{name}_sum{_prom_labels(instrument.labels)} "
                f"{_prom_value(instrument.total)}"
            )
            lines.append(
                f"{name}_count{_prom_labels(instrument.labels)} "
                f"{instrument.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Tier report
# ----------------------------------------------------------------------
def tier_report_data(fs: "OctopusFileSystem") -> dict:
    """The ``report`` command's data as a JSON-serializable dict."""
    tiers = []
    for stats in fs.master.get_storage_tier_reports():
        tiers.append(
            {
                "tier": stats.tier_name,
                "media_count": stats.media_count,
                "total_capacity": stats.total_capacity,
                "used": stats.used,
                "remaining": stats.remaining,
                "remaining_percent": stats.remaining_percent,
                "avg_write_throughput": stats.avg_write_throughput,
                "avg_read_throughput": stats.avg_read_throughput,
                "active_connections": stats.active_connections,
            }
        )
    return {
        "placement": repr(fs.master.placement_policy),
        "retrieval": repr(fs.master.retrieval_policy),
        "nodes": len(fs.cluster.nodes),
        "workers": len(fs.workers),
        "racks": len(fs.cluster.topology.racks),
        "tiers": tiers,
    }


def tier_utilization_rows(fs: "OctopusFileSystem") -> list[list]:
    """Per-tier summary rows (tier, media, used, remaining %, connections)."""
    return [
        [
            stats.tier_name,
            stats.media_count,
            stats.used,
            f"{stats.remaining_percent:.1f}%",
            stats.active_connections,
        ]
        for stats in fs.master.get_storage_tier_reports()
    ]


def metrics_json(registry: "MetricsRegistry") -> str:
    """The metrics snapshot as canonical (byte-stable) JSON."""
    document = {"schema_version": SCHEMA_VERSION, **registry.snapshot()}
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_metrics(registry: "MetricsRegistry", path: str) -> None:
    """Write metrics to ``path`` — JSON if it ends in ``.json`` or
    ``.json.gz``, else Prometheus text exposition; a trailing ``.gz``
    gzip-compresses either format deterministically."""
    text = (
        metrics_json(registry)
        if path.endswith((".json", ".json.gz"))
        else prometheus_text(registry)
    )
    _write_text(text, path)


# ----------------------------------------------------------------------
# Alert timelines
# ----------------------------------------------------------------------
def validate_alert_records(records: Iterable[dict]) -> list[str]:
    """Schema-check alert records; return a list of problems (empty = ok).

    Beyond per-record shape, checks stream-level consistency: sim
    timestamps never go backwards, and each alert key's states
    alternate (a resolve must follow a firing, and vice versa).
    """
    problems: list[str] = []
    last_time: float | None = None
    state: dict[tuple, str] = {}
    for index, record in enumerate(records):
        if record.get("kind") == "header":
            problem = schema_version_problem(record.get("schema_version"))
            if problem:
                problems.append(f"record {index}: {problem}")
            continue
        missing = {"kind", "source", "name", "state", "severity", "group",
                   "time", "details"} - record.keys()
        if missing:
            problems.append(f"record {index}: missing {sorted(missing)}")
            continue
        if record["kind"] != "alert":
            problems.append(
                f"record {index}: kind {record['kind']!r} != 'alert'"
            )
        if record["state"] not in ("firing", "resolved"):
            problems.append(
                f"record {index}: unknown state {record['state']!r}"
            )
            continue
        if last_time is not None and record["time"] < last_time:
            problems.append(f"record {index}: time goes backwards")
        last_time = record["time"]
        key = (record["source"], record["name"], record["group"])
        previous = state.get(key)
        if previous == record["state"]:
            problems.append(
                f"record {index}: {record['name']!r} repeated state "
                f"{record['state']!r} without a transition"
            )
        if previous is None and record["state"] == "resolved":
            problems.append(
                f"record {index}: {record['name']!r} resolved before firing"
            )
        state[key] = record["state"]
    return problems
