"""Online SLOs: objectives, burn-rate alert rules, and the live monitor.

The offline analytics report what a run looked like after it ended;
this module watches a run *while it happens*. An :class:`SloMonitor`
subscribes to metric updates through
:meth:`repro.obs.registry.MetricsRegistry.watch`, folds every
observation into the sliding windows of :mod:`repro.obs.windows`, and
evaluates multi-window error-budget **burn-rate** rules (the Google SRE
workbook recipe) on a :class:`~repro.sim.periodic.PeriodicProcess`
tick. Alert state transitions become first-class, deterministically
timestamped records in a shared :class:`AlertSink` — exported to JSONL,
mirrored as ``slo.alert`` tracer events (so ``repro analyze`` can pair
them with the ``fault.*`` events that caused them and report detection
delay), and exposed to the tiering engine through
:meth:`SloMonitor.burn_snapshot`.

Objectives come in two shapes:

* :class:`LatencySlo` — "p(target) of ``metric`` observations are ≤
  ``threshold`` seconds", optionally split by one label
  (``group_by="tier"`` tracks each storage tier separately). Every
  histogram observation is one good/bad event.
* :class:`AvailabilitySlo` — "at least ``target`` of operations
  succeed", fed by a success counter and a failure counter.

A :class:`BurnRateRule` fires when the error budget (``1 - target``)
burns at ≥ ``threshold`` × the sustainable rate over **both** a long
and a short window — the long window gives significance, the short one
makes the alert stop firing (and re-arm) quickly once the condition
clears.

Determinism contract, mirroring the tiering engine's idle-round
oracle: a monitor with **no rules** registers no watchers and emits
nothing — trace/metrics/Prometheus exports are byte-identical to a run
without the subsystem. With rules, alerts are emitted only on state
*transitions*, and every timestamp is simulation time, so a seeded
run's alert timeline is reproducible byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigurationError
from repro.obs.windows import (
    DEFAULT_ALPHA,
    WindowedCounts,
    WindowedSketch,
    burn_rate,
)
from repro.sim.periodic import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.system import OctopusFileSystem

__all__ = [
    "LatencySlo",
    "AvailabilitySlo",
    "BurnRateRule",
    "AlertSink",
    "SloMonitor",
    "default_read_rules",
]


@dataclass(frozen=True)
class LatencySlo:
    """``target`` of ``metric`` observations must be ≤ ``threshold``.

    ``metric`` names a histogram; each observation above ``threshold``
    (simulated seconds) spends error budget. ``group_by`` optionally
    names one label whose values split the objective into independently
    tracked groups (e.g. ``"tier"``); instruments missing the label
    land in group ``""``.
    """

    name: str
    metric: str
    threshold: float
    target: float = 0.99
    group_by: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.threshold <= 0:
            raise ConfigurationError("latency threshold must be positive")

    @property
    def budget(self) -> float:
        """The allowed error fraction (``1 - target``)."""
        return 1.0 - self.target


@dataclass(frozen=True)
class AvailabilitySlo:
    """At least ``target`` of operations must succeed.

    ``good_metric`` / ``error_metric`` name counters whose increments
    are success / failure events respectively (the repo's convention:
    ``blocks_read_total`` counts only successes,
    ``block_reads_failed_total`` only failures).
    """

    name: str
    good_metric: str
    error_metric: str
    target: float = 0.999
    group_by: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0, 1), got {self.target}"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class BurnRateRule:
    """Fire when the budget burns ≥ ``threshold``× over both windows.

    Burn rate is ``windowed error rate / error budget``: 1.0 spends the
    budget exactly; ``1 / budget`` means every event is an error. The
    rule fires when **both** the ``long_window`` and ``short_window``
    burn rates reach ``threshold`` and the long window holds at least
    ``min_samples`` events; it resolves as soon as either window drops
    below ``clear_threshold`` (default: ``threshold``). Detection delay
    is therefore bounded by ``short_window + tick interval`` plus the
    latency of the observations themselves — the alert cannot fire
    before enough bad events land in the short window.
    """

    slo: LatencySlo | AvailabilitySlo
    threshold: float = 10.0
    long_window: float = 60.0
    short_window: float = 5.0
    severity: str = "page"
    min_samples: int = 1
    clear_threshold: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ConfigurationError("burn threshold must be positive")
        if self.short_window > self.long_window:
            raise ConfigurationError(
                "short_window must not exceed long_window"
            )
        if self.min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")

    @property
    def rule_name(self) -> str:
        return self.name or f"{self.slo.name}:burn:{self.severity}"

    @property
    def clears_at(self) -> float:
        return (
            self.threshold
            if self.clear_threshold is None
            else self.clear_threshold
        )


class AlertSink:
    """The shared, ordered alert timeline all monitors append to.

    Every transition is appended as a JSON-serializable record and
    mirrored as a ``<source>.alert`` tracer event plus an
    ``alerts_total{alert, state}`` counter — but only on transitions, so
    a run in which nothing fires leaves the exports untouched.
    """

    def __init__(self, obs) -> None:
        self.obs = obs
        self.timeline: list[dict] = []

    def emit(
        self,
        source: str,
        name: str,
        state: str,
        severity: str,
        group: str = "",
        slo: str | None = None,
        **details,
    ) -> dict:
        record = {
            "kind": "alert",
            "source": source,
            "name": name,
            "state": state,
            "severity": severity,
            "group": group,
            "slo": slo,
            "time": self.obs.now(),
            "details": details,
        }
        self.timeline.append(record)
        obs = self.obs
        # The flight recorder sees every transition (and may open an
        # incident); the detached path is a shared no-op singleton.
        recorder = getattr(obs, "recorder", None)
        if recorder is not None:
            recorder.on_alert(record)
        if obs.enabled:
            obs.tracer.event(
                f"{source}.alert",
                parent=None,
                alert=name,
                state=state,
                severity=severity,
                group=group,
                **details,
            )
            obs.metrics.counter("alerts_total", alert=name, state=state).inc()
        return record

    def firing(self) -> list[str]:
        """Names of alerts currently firing (sorted, with group suffix)."""
        state: dict[str, bool] = {}
        for record in self.timeline:
            key = record["name"] + (
                f"/{record['group']}" if record["group"] else ""
            )
            state[key] = record["state"] == "firing"
        return sorted(k for k, firing in state.items() if firing)


class _SeriesState:
    """Per-(SLO, group) sliding-window state."""

    __slots__ = ("counts", "sketch")

    def __init__(self, counts: WindowedCounts, sketch: WindowedSketch | None):
        self.counts = counts
        self.sketch = sketch


class SloMonitor:
    """Evaluate burn-rate rules live, on a periodic sim-time tick.

    Attach with :meth:`start` once observability is enabled; detach
    with :meth:`stop` before draining the engine with a bare
    ``engine.run()`` (the same contract as ``stop_services`` and the
    tiering engine). All rules are evaluated every ``interval``
    simulated seconds in deterministic (rule, group) order.
    """

    def __init__(
        self,
        system: "OctopusFileSystem | None" = None,
        rules: Iterable[BurnRateRule] = (),
        interval: float = 1.0,
        bucket_width: float | None = None,
        alpha: float = DEFAULT_ALPHA,
        sink: AlertSink | None = None,
        name: str = "slo-monitor",
        obs=None,
        clock=None,
    ) -> None:
        if system is not None:
            obs = system.obs
            engine = system.engine
            if clock is None:
                clock = lambda: engine.now  # noqa: E731
        elif obs is None:
            raise ConfigurationError(
                "SloMonitor needs a system or an explicit obs bundle"
            )
        self.system = system
        self.obs = obs
        #: Engine-less benchmarks (S-Live is wall-clock driven) pass
        #: ``obs``+``clock`` and call :meth:`tick` by hand instead of
        #: :meth:`start`.
        self.clock = clock if clock is not None else obs.now
        self.rules = tuple(rules)
        if self.rules and not obs.enabled:
            raise ConfigurationError(
                "SloMonitor needs observability enabled to see metrics; "
                "call obs.enable() before constructing the monitor"
            )
        names = [rule.rule_name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate rule names in {names}")
        self.interval = float(interval)
        self.alpha = alpha
        self.sink = sink if sink is not None else AlertSink(obs)
        self.name = name
        # Window bookkeeping must be finer than the smallest window it
        # feeds, and retain the largest.
        shortest = min(
            (rule.short_window for rule in self.rules), default=1.0
        )
        longest = max((rule.long_window for rule in self.rules), default=60.0)
        self.bucket_width = (
            float(bucket_width) if bucket_width is not None
            else min(self.interval, shortest)
        )
        if self.bucket_width > shortest:
            raise ConfigurationError(
                f"bucket_width {self.bucket_width} exceeds the shortest "
                f"rule window {shortest}"
            )
        self._retention = longest + self.bucket_width
        self._series: dict[tuple[str, str], _SeriesState] = {}
        self._slos: dict[str, LatencySlo | AvailabilitySlo] = {}
        self._firing: dict[tuple[str, str], bool] = {}
        self.ticks = 0
        self._periodic: PeriodicProcess | None = None
        self._watching = False
        if self.rules:
            self._register_watchers()
            self._watching = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._periodic is not None and self._periodic.running

    def start(self, initial_delay: float | None = None) -> "SloMonitor":
        if self.system is None:
            raise ConfigurationError(
                "an engine-less SloMonitor cannot start a periodic "
                "process; drive it with explicit tick() calls"
            )
        if self.running:
            raise ConfigurationError(f"monitor {self.name!r} already running")
        self._periodic = PeriodicProcess(
            self.system.engine,
            self.tick,
            self.interval,
            name=self.name,
            initial_delay=initial_delay,
        ).start()
        return self

    def stop(self) -> None:
        if self._periodic is not None:
            self._periodic.stop()
            self._periodic = None

    # ------------------------------------------------------------------
    # Ingest: registry watchers → sliding windows
    # ------------------------------------------------------------------
    def _register_watchers(self) -> None:
        metrics = self.obs.metrics
        for rule in self.rules:
            slo = rule.slo
            if slo.name in self._slos:
                if self._slos[slo.name] != slo:
                    raise ConfigurationError(
                        f"conflicting SLO definitions named {slo.name!r}"
                    )
                continue
            self._slos[slo.name] = slo
            if isinstance(slo, LatencySlo):
                metrics.watch(
                    "histogram", slo.metric, self._latency_watcher(slo)
                )
            else:
                metrics.watch(
                    "counter", slo.good_metric,
                    self._count_watcher(slo, bad=False),
                )
                metrics.watch(
                    "counter", slo.error_metric,
                    self._count_watcher(slo, bad=True),
                )

    def _group_of(self, slo, instrument) -> str:
        if slo.group_by is None:
            return ""
        for key, value in instrument.labels:
            if key == slo.group_by:
                return value
        return ""

    def _state(self, slo, group: str) -> _SeriesState:
        key = (slo.name, group)
        state = self._series.get(key)
        if state is None:
            clock = self.clock
            counts = WindowedCounts(clock, self.bucket_width, self._retention)
            sketch = (
                WindowedSketch(
                    clock, self.bucket_width, self._retention, self.alpha
                )
                if isinstance(slo, LatencySlo)
                else None
            )
            state = self._series[key] = _SeriesState(counts, sketch)
        return state

    def _latency_watcher(self, slo: LatencySlo):
        def on_observe(instrument, value: float) -> None:
            state = self._state(slo, self._group_of(slo, instrument))
            state.counts.record(bad=value > slo.threshold)
            state.sketch.observe(value)

        return on_observe

    def _count_watcher(self, slo: AvailabilitySlo, bad: bool):
        def on_inc(instrument, amount: float) -> None:
            if amount > 0:
                state = self._state(slo, self._group_of(slo, instrument))
                state.counts.record(bad=bad, count=amount)

        return on_inc

    # ------------------------------------------------------------------
    # Evaluate: burn-rate state machine
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Evaluate every rule against every group seen so far."""
        self.ticks += 1
        try:
            for rule in self.rules:
                slo = rule.slo
                groups = sorted(
                    group for name, group in self._series if name == slo.name
                )
                for group in groups:
                    self._evaluate(rule, group)
        except Exception as exc:
            recorder = getattr(self.obs, "recorder", None)
            if recorder is not None:
                recorder.on_exception(f"slo-monitor:{self.name}", exc)
            raise

    def _burns(
        self, rule: BurnRateRule, group: str
    ) -> tuple[float, float, float]:
        """``(burn_long, burn_short, samples_long)`` for one group."""
        state = self._series[(rule.slo.name, group)]
        budget = rule.slo.budget
        good, bad = state.counts.totals(rule.long_window)
        long_rate = bad / (good + bad) if good + bad else None
        burn_long = burn_rate(long_rate, budget)
        burn_short = burn_rate(
            state.counts.error_rate(rule.short_window), budget
        )
        return burn_long, burn_short, good + bad

    def _evaluate(self, rule: BurnRateRule, group: str) -> None:
        burn_long, burn_short, samples = self._burns(rule, group)
        key = (rule.rule_name, group)
        firing = self._firing.get(key, False)
        if not firing:
            if (
                samples >= rule.min_samples
                and burn_long >= rule.threshold
                and burn_short >= rule.threshold
            ):
                self._firing[key] = True
                self.sink.emit(
                    "slo",
                    rule.rule_name,
                    "firing",
                    rule.severity,
                    group=group,
                    slo=rule.slo.name,
                    burn_long=burn_long,
                    burn_short=burn_short,
                    burn_threshold=rule.threshold,
                    long_window=rule.long_window,
                    short_window=rule.short_window,
                )
        else:
            clears = rule.clears_at
            if burn_long < clears or burn_short < clears:
                self._firing[key] = False
                self.sink.emit(
                    "slo",
                    rule.rule_name,
                    "resolved",
                    rule.severity,
                    group=group,
                    slo=rule.slo.name,
                    burn_long=burn_long,
                    burn_short=burn_short,
                )

    # ------------------------------------------------------------------
    # Read side: feedback for policies, reports, and the CLI
    # ------------------------------------------------------------------
    def burn_snapshot(self) -> tuple[tuple[str, float], ...]:
        """Current long-window burn per rule/group, for ObservedState.

        Keys are ``"<rule name>"`` or ``"<rule name>/<group>"``; values
        are the long-window burn rate at the current sim instant.
        Sorted, hashable, and allocation-light — the tiering engine
        embeds this directly in its frozen ``ObservedState``.
        """
        out = []
        for rule in self.rules:
            for name, group in sorted(self._series):
                if name != rule.slo.name:
                    continue
                burn_long, _, _ = self._burns(rule, group)
                key = rule.rule_name + (f"/{group}" if group else "")
                out.append((key, burn_long))
        return tuple(out)

    def firing(self) -> tuple[str, ...]:
        """Currently firing alert keys (``name`` or ``name/group``)."""
        return tuple(
            name + (f"/{group}" if group else "")
            for (name, group), firing in sorted(self._firing.items())
            if firing
        )

    def watch_summary(self) -> dict:
        """The live-health overview rendered by ``report --json``."""
        slos = []
        for (slo_name, group), state in sorted(self._series.items()):
            slo = self._slos[slo_name]
            rules = [r for r in self.rules if r.slo.name == slo_name]
            longest = max(r.long_window for r in rules)
            good, bad = state.counts.totals(longest)
            entry: dict = {
                "slo": slo_name,
                "group": group,
                "window": longest,
                "events": good + bad,
                "errors": bad,
                "burn_rates": {
                    r.rule_name: self._burns(r, group)[0] for r in rules
                },
            }
            if state.sketch is not None:
                p99 = state.sketch.quantile(0.99, longest)
                entry["p99"] = p99
                entry["threshold"] = slo.threshold
            slos.append(entry)
        return {
            "ticks": self.ticks,
            "rules": len(self.rules),
            "alerts_firing": list(self.firing()),
            "alerts_emitted": len(
                [r for r in self.sink.timeline if r["source"] == "slo"]
            ),
            "slos": slos,
        }


def default_read_rules(
    latency_threshold: float = 0.5,
    latency_target: float = 0.95,
    availability_target: float = 0.999,
    burn_threshold: float = 10.0,
    long_window: float = 60.0,
    short_window: float = 5.0,
) -> tuple[BurnRateRule, ...]:
    """The stock rule set the CLI ``--slo`` flag enables.

    One per-tier read-latency SLO over ``tier_read_seconds`` and one
    cluster-wide read-availability SLO over ``blocks_read_total`` /
    ``block_reads_failed_total``, each guarded by a paired-window burn
    rule. Thresholds are deliberately loose; experiments that want
    tight bounds construct their own rules.
    """
    latency = LatencySlo(
        name="read-latency",
        metric="tier_read_seconds",
        threshold=latency_threshold,
        target=latency_target,
        group_by="tier",
    )
    availability = AvailabilitySlo(
        name="read-availability",
        good_metric="blocks_read_total",
        error_metric="block_reads_failed_total",
        target=availability_target,
    )
    return (
        BurnRateRule(
            latency,
            threshold=burn_threshold,
            long_window=long_window,
            short_window=short_window,
            severity="page",
        ),
        BurnRateRule(
            availability,
            threshold=burn_threshold,
            long_window=long_window,
            short_window=short_window,
            severity="page",
        ),
    )
