"""Waitable events for the simulation engine.

An :class:`Event` is a one-shot future living on a simulated timeline.
Processes (generators driven by :class:`~repro.sim.engine.SimulationEngine`)
``yield`` events to suspend until the event triggers; the event's value
becomes the result of the ``yield`` expression, and a failed event raises
its exception inside the process.

Events are allocation-light: the callback list is created lazily on the
first ``add_callback`` (most flow-completion events have exactly one
waiter, and many none), and the classes use ``__slots__`` — the
simulator creates one event per transfer, timeout, and heartbeat, so
this is a hot path at benchmark scale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import SimulationEngine, TimerHandle

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class Event:
    """A one-shot, waitable occurrence on the simulated timeline."""

    __slots__ = ("engine", "callbacks", "_state", "_value", "_exception")

    def __init__(self, engine: "SimulationEngine") -> None:
        self.engine = engine
        #: Lazily-created list of waiters; ``None`` until the first
        #: ``add_callback`` (and again after the engine consumes them).
        self.callbacks: list[Callable[["Event"], None]] | None = None
        self._state = PENDING
        self._value: Any = None
        self._exception: BaseException | None = None

    @property
    def triggered(self) -> bool:
        return self._state != PENDING

    @property
    def ok(self) -> bool:
        return self._state == SUCCEEDED

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value read before it triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully; callbacks run at the current time."""
        self._settle(SUCCEEDED, value=value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._settle(FAILED, exception=exception)
        return self

    def _settle(
        self,
        state: str,
        value: Any = None,
        exception: BaseException | None = None,
    ) -> None:
        if self._state != PENDING:
            raise SimulationError("event triggered twice")
        self._state = state
        self._value = value
        self._exception = exception
        if self.callbacks:
            self.engine._schedule_callbacks(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs immediately if already triggered."""
        if self.triggered:
            self.engine._schedule_single_callback(self, callback)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} state={self._state}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation."""

    __slots__ = ("delay", "handle")

    def __init__(
        self, engine: "SimulationEngine", delay: float, value: Any = None
    ) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        #: The underlying :class:`~repro.sim.engine.TimerHandle`; cancel
        #: it to abandon the timeout without it ever firing.
        self.handle: "TimerHandle" = engine._schedule_timeout(self, delay, value)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, engine: "SimulationEngine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when all child events succeed; fails fast on any failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(_Condition):
    """Succeeds with the first child to succeed; fails if the first settles badly."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.exception)  # type: ignore[arg-type]
