"""Deterministic discrete-event simulation substrate.

This package provides the execution substrate that stands in for the
paper's physical 10-node cluster:

* :mod:`repro.sim.engine` — a minimal SimPy-style engine: simulated
  clock, event heap, and generator-based processes.
* :mod:`repro.sim.events` — waitable events (:class:`Event`,
  :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`).
* :mod:`repro.sim.flows` — a fluid-flow bandwidth model: long-running
  data transfers share NIC/switch/media capacity under max–min fairness,
  which is what produces the concurrency effects the paper measures
  (SSD-vs-3×HDD crossover, network congestion decline, etc.).
* :mod:`repro.sim.faults` — deterministic fault injection: declarative
  :class:`FaultSchedule` scenarios, a seeded :class:`ChaosProcess`, and
  the :class:`FaultInjector` facade, all running as engine processes.
* :mod:`repro.sim.periodic` — a stoppable wait-first periodic callback
  process (the shape shared by heartbeats, the replication monitor, and
  the tiering engine's policy rounds).
"""

from repro.sim.engine import SimulationEngine, TimerHandle
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.periodic import PeriodicProcess
from repro.sim.faults import (
    ChaosProcess,
    FaultEvent,
    FaultInjector,
    FaultRecord,
    FaultSchedule,
)
from repro.sim.flows import (
    DenseFlowSolver,
    Flow,
    FlowScheduler,
    FlowSet,
    IncrementalFlowSolver,
    Resource,
)

__all__ = [
    "SimulationEngine",
    "TimerHandle",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Flow",
    "FlowScheduler",
    "FlowSet",
    "DenseFlowSolver",
    "IncrementalFlowSolver",
    "Resource",
    "ChaosProcess",
    "FaultEvent",
    "FaultInjector",
    "FaultRecord",
    "FaultSchedule",
    "PeriodicProcess",
]
