"""Deterministic fault injection for the simulated cluster.

The paper's replication manager (§5) earns its keep only when replicas
die; this module makes death schedulable, seeded, and reproducible. It
offers three entry points, all running as first-class processes on
:class:`~repro.sim.engine.SimulationEngine`:

* :class:`FaultSchedule` — a declarative, time-ordered list of
  :class:`FaultEvent`s ("at t=4 crash worker2, at t=9 restart it").
* :class:`ChaosProcess` — samples faults from a seeded
  :class:`~repro.util.rng.DeterministicRng` at a configurable rate and
  heals what it breaks, for randomized robustness runs. The same seed
  produces the same event trace, bit for bit.
* :class:`FaultInjector` — the imperative facade both of the above
  drive. Every applied fault is appended to ``injector.trace``, so two
  runs can be compared event by event.

Supported fault classes (the ``kind`` axis of :class:`FaultEvent`):

=================  ====================================================
``crash``          Node dies; in-flight transfers abort; volatile
                   (memory) replicas are lost. Healed by ``restart``.
``silence``        Network partition: heartbeats and transfers stop but
                   the process and all its data survive. Healed by
                   ``unsilence`` (the master reconciles, not
                   re-registers — silence and death are distinct
                   states).
``fail_medium``    One storage device dies; its replicas are lost.
                   Healed by ``repair_medium`` (device returns empty).
``degrade_medium`` Device throughput drops to ``factor`` of baseline;
                   in-flight flows re-share immediately.
``slow_node``      NIC rate cap at ``factor`` of baseline (straggler
                   node). Healed by ``restore_node``.
``corrupt``        One replica of a block fails its checksum; the event
                   feeds :meth:`Master.report_corrupt_replica` and the
                   replication manager re-replicates from a clean copy.
=================  ====================================================

Determinism: the engine is single-threaded with deterministic
tie-breaking, every random draw comes from a labelled
:class:`DeterministicRng`, and target selection iterates sorted names —
so a fixed seed yields an identical trace and an identical final block
map across invocations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Iterable

from repro.errors import FaultInjectionError
from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Process
    from repro.fs.system import OctopusFileSystem

#: Every schedulable fault kind (heals included — a heal is an event).
FAULT_KINDS = (
    "crash",
    "restart",
    "silence",
    "unsilence",
    "fail_medium",
    "repair_medium",
    "degrade_medium",
    "slow_node",
    "restore_node",
    "corrupt",
)


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: *at* simulated second ``at``, do ``kind`` to
    ``target`` (a node name, medium id, or file path for ``corrupt``)."""

    at: float
    kind: str
    target: str
    #: Throughput/rate factor for ``degrade_medium`` / ``slow_node``.
    factor: float | None = None
    #: For ``corrupt``: which block of the file (default: first).
    block_index: int = 0
    #: For ``corrupt``: which replica; ``None`` picks deterministically.
    medium_id: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise FaultInjectionError(f"fault time must be >= 0, got {self.at}")
        if self.kind in ("degrade_medium", "slow_node") and (
            self.factor is None or not 0.0 < self.factor <= 1.0
        ):
            raise FaultInjectionError(
                f"{self.kind} needs a factor in (0, 1], got {self.factor}"
            )


@dataclass(frozen=True)
class FaultRecord:
    """One applied fault, as remembered by the injector's trace."""

    time: float
    kind: str
    target: str
    detail: str = ""

    def line(self) -> str:
        """A canonical one-line rendering, for trace comparison."""
        suffix = f" {self.detail}" if self.detail else ""
        return f"t={self.time:.6f} {self.kind} {self.target}{suffix}"


class FaultSchedule:
    """A declarative, time-ordered fault scenario.

    Build it event by event (the fluent helpers return ``self``)::

        schedule = (
            FaultSchedule()
            .crash(at=4.0, node="worker2")
            .restart(at=20.0, node="worker2")
            .degrade_medium(at=6.0, medium="worker1:hdd0", factor=0.25)
        )
        fs = OctopusFileSystem(spec, faults=schedule)

    Events fire in ``at`` order (insertion order breaks ties).
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: list[FaultEvent] = list(events)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self.events.append(event)
        return self

    def ordered(self) -> list[FaultEvent]:
        """Events sorted by time; ties keep insertion order (stable)."""
        return sorted(self.events, key=lambda e: e.at)

    # -- fluent builders ------------------------------------------------
    def crash(self, at: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at, "crash", node))

    def restart(self, at: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at, "restart", node))

    def silence(self, at: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at, "silence", node))

    def unsilence(self, at: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at, "unsilence", node))

    def fail_medium(self, at: float, medium: str) -> "FaultSchedule":
        return self.add(FaultEvent(at, "fail_medium", medium))

    def repair_medium(self, at: float, medium: str) -> "FaultSchedule":
        return self.add(FaultEvent(at, "repair_medium", medium))

    def degrade_medium(
        self, at: float, medium: str, factor: float
    ) -> "FaultSchedule":
        return self.add(FaultEvent(at, "degrade_medium", medium, factor=factor))

    def slow_node(self, at: float, node: str, factor: float) -> "FaultSchedule":
        return self.add(FaultEvent(at, "slow_node", node, factor=factor))

    def restore_node(self, at: float, node: str) -> "FaultSchedule":
        return self.add(FaultEvent(at, "restore_node", node))

    def corrupt(
        self,
        at: float,
        path: str,
        block_index: int = 0,
        medium_id: str | None = None,
    ) -> "FaultSchedule":
        return self.add(
            FaultEvent(
                at, "corrupt", path, block_index=block_index, medium_id=medium_id
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultSchedule events={len(self.events)}>"


class FaultInjector:
    """Imperative fault facade over one :class:`OctopusFileSystem`.

    Every applied fault lands in :attr:`trace`; compare
    :meth:`trace_lines` across runs to assert reproducibility.
    """

    def __init__(self, system: "OctopusFileSystem") -> None:
        self.system = system
        self.trace: list[FaultRecord] = []

    # ------------------------------------------------------------------
    # Trace
    # ------------------------------------------------------------------
    def _record(self, kind: str, target: str, detail: str = "") -> None:
        record = FaultRecord(self.system.engine.now, kind, target, detail)
        self.trace.append(record)
        # Mirror into the observability trace stream so chaos runs can
        # correlate injected faults with the degradation they cause.
        obs = self.system.cluster.obs
        if obs.enabled:
            obs.tracer.event(
                "fault." + kind, target=target, detail=detail
            )
            obs.metrics.counter("faults_injected_total", kind=kind).inc()
        # The flight recorder sees every applied fault (and opens an
        # incident on damaging ones); detached = shared no-op singleton.
        obs.recorder.on_fault(record)
        # The provenance ledger keeps it as triggering context for the
        # repair decisions that follow.
        obs.ledger.on_fault(record)

    def trace_lines(self) -> list[str]:
        """The applied-fault log as canonical strings (seed-stable)."""
        return [record.line() for record in self.trace]

    # ------------------------------------------------------------------
    # Primitives (each delegates to the system layer and records)
    # ------------------------------------------------------------------
    def crash(self, node: str) -> None:
        self.system.fail_worker(node)
        self._record("crash", node)

    def restart(self, node: str) -> None:
        self.system.recover_worker(node)
        self._record("restart", node)

    def silence(self, node: str) -> None:
        self.system.silence_worker(node)
        self._record("silence", node)

    def unsilence(self, node: str) -> None:
        self.system.unsilence_worker(node)
        self._record("unsilence", node)

    def fail_medium(self, medium_id: str) -> None:
        self.system.fail_medium(medium_id)
        self._record("fail_medium", medium_id)

    def repair_medium(self, medium_id: str) -> None:
        self.system.repair_medium(medium_id)
        self._record("repair_medium", medium_id)

    def degrade_medium(self, medium_id: str, factor: float) -> None:
        self.system.degrade_medium(medium_id, factor)
        self._record("degrade_medium", medium_id, f"factor={factor:.4f}")

    def slow_node(self, node: str, factor: float) -> None:
        self.system.slow_worker(node, factor)
        self._record("slow_node", node, f"factor={factor:.4f}")

    def restore_node(self, node: str) -> None:
        self.system.restore_worker_speed(node)
        self._record("restore_node", node)

    def corrupt_replica(self, block_id: int, medium_id: str) -> None:
        """Checksum-fail one specific replica, as a reader would report."""
        meta = self.system.master.block_map.get(block_id)
        if meta is None:
            raise FaultInjectionError(f"unknown block {block_id}")
        self.system.master.report_corrupt_replica(block_id, medium_id)
        # Trace by path#index, not block id: block ids are process-global
        # counters and would break cross-invocation trace comparison.
        self._record(
            "corrupt",
            f"{meta.block.file_path}#{meta.block.index}",
            f"medium={medium_id}",
        )

    def corrupt_block(
        self, path: str, block_index: int = 0, medium_id: str | None = None
    ) -> None:
        """Corrupt one replica of ``path``'s ``block_index``-th block.

        With ``medium_id=None`` the victim is chosen deterministically
        (lowest medium id among live replicas).
        """
        master = self.system.master_for(path)
        inode = master.namespace.get_file(path)
        if block_index >= len(inode.blocks):
            raise FaultInjectionError(
                f"{path!r} has no block index {block_index}"
            )
        block = inode.blocks[block_index]
        meta = master.block_map.get(block.block_id)
        live = meta.live_replicas() if meta else []
        if not live:
            raise FaultInjectionError(
                f"block {block.block_id} of {path!r} has no live replica"
            )
        if medium_id is None:
            medium_id = min(r.medium.medium_id for r in live)
        master.report_corrupt_replica(block.block_id, medium_id)
        self._record(
            "corrupt", f"{block.file_path}#{block.index}", f"medium={medium_id}"
        )

    # ------------------------------------------------------------------
    # Declarative schedules
    # ------------------------------------------------------------------
    def apply(self, event: FaultEvent) -> None:
        """Apply one event *now* (its ``at`` is ignored)."""
        if event.kind == "crash":
            self.crash(event.target)
        elif event.kind == "restart":
            self.restart(event.target)
        elif event.kind == "silence":
            self.silence(event.target)
        elif event.kind == "unsilence":
            self.unsilence(event.target)
        elif event.kind == "fail_medium":
            self.fail_medium(event.target)
        elif event.kind == "repair_medium":
            self.repair_medium(event.target)
        elif event.kind == "degrade_medium":
            assert event.factor is not None
            self.degrade_medium(event.target, event.factor)
        elif event.kind == "slow_node":
            assert event.factor is not None
            self.slow_node(event.target, event.factor)
        elif event.kind == "restore_node":
            self.restore_node(event.target)
        elif event.kind == "corrupt":
            self.corrupt_block(event.target, event.block_index, event.medium_id)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise FaultInjectionError(f"unknown fault kind {event.kind!r}")

    def schedule_proc(self, schedule: FaultSchedule) -> Generator:
        """Process: wait for and apply each event of ``schedule``."""
        engine = self.system.engine
        for event in schedule.ordered():
            if event.at > engine.now:
                yield engine.timeout(event.at - engine.now)
            self.apply(event)

    def run_schedule(self, schedule: FaultSchedule) -> "Process":
        """Arm a schedule as an engine process; returns the process."""
        return self.system.engine.process(
            self.schedule_proc(schedule), name="fault-schedule"
        )

    # ------------------------------------------------------------------
    # Randomized chaos
    # ------------------------------------------------------------------
    def start_chaos(self, seed: int | str = 0, **kwargs) -> "ChaosProcess":
        """Launch a seeded :class:`ChaosProcess`; returns it with its
        ``process`` attribute set so callers can await completion."""
        chaos = ChaosProcess(self, seed=seed, **kwargs)
        chaos.process = self.system.engine.process(chaos.run(), name="chaos")
        return chaos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector events={len(self.trace)}>"


#: Fault kinds ChaosProcess samples by default (heals are implicit).
CHAOS_KINDS = ("crash", "silence", "fail_medium", "degrade", "slow", "corrupt")


class ChaosProcess:
    """Seeded random fault generator that heals what it breaks.

    Runs as one engine process: strike times are exponentially
    distributed with mean ``mean_interval``; each strike picks a fault
    kind and a target from the *sorted* candidate lists (so selection is
    a pure function of the seed and cluster state), applies it through
    the :class:`FaultInjector`, and schedules the matching heal a
    ``heal_delay``-uniform time later. After ``duration`` seconds (or
    ``max_events`` strikes) it stops striking, drains the outstanding
    heals, and returns — the cluster ends fully healed, so a subsequent
    ``await_replication`` must converge every block.

    With ``avoid_data_loss`` (default), a strike never removes the last
    live copy of any block: crashes spare nodes holding any sole live
    copy, medium failures spare sole-survivor devices, and corruption
    targets only blocks with at least two live replicas.
    """

    def __init__(
        self,
        injector: FaultInjector,
        seed: int | str | DeterministicRng = 0,
        mean_interval: float = 5.0,
        duration: float = 120.0,
        heal_delay: tuple[float, float] = (2.0, 15.0),
        kinds: tuple[str, ...] = CHAOS_KINDS,
        max_events: int | None = None,
        max_concurrent_down: int = 1,
        avoid_data_loss: bool = True,
    ) -> None:
        unknown = set(kinds) - set(CHAOS_KINDS)
        if unknown:
            raise FaultInjectionError(
                f"unknown chaos kinds {sorted(unknown)}; "
                f"expected a subset of {CHAOS_KINDS}"
            )
        self.injector = injector
        self.system = injector.system
        self.rng = (
            seed
            if isinstance(seed, DeterministicRng)
            else DeterministicRng(seed, "chaos")
        )
        self.mean_interval = float(mean_interval)
        self.duration = float(duration)
        self.heal_delay = heal_delay
        self.kinds = tuple(kinds)
        self.max_events = max_events
        self.max_concurrent_down = max_concurrent_down
        self.avoid_data_loss = avoid_data_loss
        self.strikes = 0
        self.process: "Process | None" = None

    # ------------------------------------------------------------------
    # The process
    # ------------------------------------------------------------------
    def run(self) -> Generator:
        engine = self.system.engine
        deadline = engine.now + self.duration
        heals: list[tuple[float, int, Callable[[], None]]] = []
        heal_seq = 0
        next_strike: float | None = engine.now + self.rng.expovariate(
            1.0 / self.mean_interval
        )
        while True:
            due = []
            if next_strike is not None:
                due.append(next_strike)
            if heals:
                due.append(heals[0][0])
            if not due:
                return self.strikes
            target_time = min(due)
            if target_time > engine.now:
                yield engine.timeout(target_time - engine.now)
            while heals and heals[0][0] <= engine.now + 1e-9:
                _, _, heal = heapq.heappop(heals)
                heal()
            if next_strike is not None and next_strike <= engine.now + 1e-9:
                healer = self._strike()
                if healer is not None:
                    heal_seq += 1
                    delay = self.rng.uniform(*self.heal_delay)
                    heapq.heappush(heals, (engine.now + delay, heal_seq, healer))
                done = engine.now >= deadline or (
                    self.max_events is not None
                    and self.strikes >= self.max_events
                )
                next_strike = (
                    None
                    if done
                    else engine.now
                    + self.rng.expovariate(1.0 / self.mean_interval)
                )

    # ------------------------------------------------------------------
    # Strike selection (all candidate lists are sorted => deterministic)
    # ------------------------------------------------------------------
    def _strike(self) -> Callable[[], None] | None:
        kind = self.rng.choice(self.kinds)
        healer = getattr(self, f"_strike_{kind}")()
        if healer is not None:
            self.strikes += 1
        return healer

    def _down_count(self) -> int:
        return sum(
            1
            for name in self.system.workers
            if self.system.cluster.node(name).failed
            or self.system.cluster.node(name).unreachable
        )

    def _up_workers(self) -> list[str]:
        up = []
        for name in sorted(self.system.workers):
            node = self.system.cluster.node(name)
            if node.failed or node.unreachable or node.decommissioning:
                continue
            up.append(name)
        return up

    def _replica_has_other_live(self, replica) -> bool:
        meta = self.system.master.block_map.get(replica.block.block_id)
        if meta is None:
            return True  # not an active block; nothing to lose
        return any(r.live and r is not replica for r in meta.replicas)

    def _crash_is_safe(self, name: str) -> bool:
        # A crash loses volatile replicas outright, and the master may
        # prune the node's durable replicas before it returns — so the
        # node must hold no sole live copy of anything.
        worker = self.system.workers[name]
        for replica in worker.block_report():
            if not self._replica_has_other_live(replica):
                return False
        return True

    def _medium_fail_is_safe(self, medium) -> bool:
        worker = self.system.workers.get(medium.node.name)
        if worker is None:
            return True
        for replica in worker.block_report():
            if replica.medium is medium and not self._replica_has_other_live(
                replica
            ):
                return False
        return True

    def _strike_crash(self) -> Callable[[], None] | None:
        if self._down_count() >= self.max_concurrent_down:
            return None
        candidates = [
            name
            for name in self._up_workers()
            if not self.avoid_data_loss or self._crash_is_safe(name)
        ]
        if not candidates:
            return None
        name = self.rng.choice(candidates)
        self.injector.crash(name)
        return lambda: self.injector.restart(name)

    def _strike_silence(self) -> Callable[[], None] | None:
        if self._down_count() >= self.max_concurrent_down:
            return None
        candidates = self._up_workers()
        if not candidates:
            return None
        name = self.rng.choice(candidates)
        self.injector.silence(name)
        return lambda: self.injector.unsilence(name)

    def _live_media(self) -> list:
        media = []
        for medium_id in sorted(self.system.cluster.media):
            medium = self.system.cluster.media[medium_id]
            node = medium.node
            if medium.failed or node.failed or node.unreachable:
                continue
            media.append(medium)
        return media

    def _strike_fail_medium(self) -> Callable[[], None] | None:
        candidates = [
            m
            for m in self._live_media()
            if not self.avoid_data_loss or self._medium_fail_is_safe(m)
        ]
        if not candidates:
            return None
        medium = self.rng.choice(candidates)
        self.injector.fail_medium(medium.medium_id)
        return lambda: self.injector.repair_medium(medium.medium_id)

    def _strike_degrade(self) -> Callable[[], None] | None:
        candidates = [m for m in self._live_media() if m.degrade_factor == 1.0]
        if not candidates:
            return None
        medium = self.rng.choice(candidates)
        factor = self.rng.uniform(0.1, 0.6)
        self.injector.degrade_medium(medium.medium_id, factor)
        return lambda: self.injector.degrade_medium(medium.medium_id, 1.0)

    def _strike_slow(self) -> Callable[[], None] | None:
        candidates = [
            name
            for name in self._up_workers()
            if self.system.cluster.node(name).nic_factor == 1.0
        ]
        if not candidates:
            return None
        name = self.rng.choice(candidates)
        factor = self.rng.uniform(0.1, 0.6)
        self.injector.slow_node(name, factor)
        return lambda: self.injector.restore_node(name)

    def _strike_corrupt(self) -> Callable[[], None] | None:
        minimum = 2 if self.avoid_data_loss else 1
        candidates: list[tuple[int, str]] = []
        for block_id in sorted(self.system.master.block_map):
            meta = self.system.master.block_map[block_id]
            live = meta.live_replicas()
            if len(live) < minimum:
                continue
            candidates.extend(
                sorted((block_id, r.medium.medium_id) for r in live)
            )
        if not candidates:
            return None
        block_id, medium_id = self.rng.choice(candidates)
        self.injector.corrupt_replica(block_id, medium_id)
        return None  # the replication manager is the heal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChaosProcess strikes={self.strikes}>"
