"""Fluid-flow bandwidth model with max–min fair sharing.

Data transfers in the simulated cluster are *flows*: a number of bytes
moving across a set of capacitated resources (NIC ingress/egress, rack
uplinks, storage-media read/write channels). At any instant, every
active flow receives a transfer rate computed by progressive filling
(max–min fairness): the most contended resource caps the rates of the
flows crossing it, those flows are frozen, the residual capacity is
redistributed, and so on. This flow-level ("fluid") approximation is
the standard technique for simulating bandwidth sharing without
packet-level detail, and it reproduces the concurrency phenomena the
paper's evaluation depends on: a medium's throughput dividing among
concurrent streams, NIC congestion growing with the degree of
parallelism, and a pipeline's rate being set by its slowest stage (a
pipeline write is a single flow crossing all stage resources).

Incremental scheduling
----------------------
The scheduler maintains the flow↔resource bipartite graph explicitly
(:class:`FlowSet` per resource, ``flow.resources`` per flow). When a
flow starts, finishes, or is cancelled — or a capacity changes — only
the **connected component** of the graph touched by the change can see
different max–min rates: progressive filling never moves capacity
between disconnected components. :class:`IncrementalFlowSolver`
therefore re-fills just that component (found by BFS from the changed
flows/resources — or the whole active set when it is small enough that
the search would cost more than it saves), reusing cached rates
everywhere else, while
:class:`DenseFlowSolver` re-fills every active flow — the original
O(events × flows × resources) behavior, kept behind a flag as an
escape hatch and as the oracle for the differential equivalence tests.

Both solvers share every other code path, and per-component filling is
*bit-identical* to global filling (same subtraction arithmetic, same
deterministic bottleneck order within a component), so the two produce
identical simulated completion times and byte-identical trace/metrics
exports — asserted by ``tests/test_flow_solver_equivalence.py``.

Progress integration is lazy: each flow carries a ``last_advanced``
timestamp and its remaining bytes are materialized only when its *rate
value* actually changes (or it finishes), instead of sweeping every
active flow on every event. Completions are tracked in a per-flow heap
``(finish_time, seq, token, flow)`` with token-bump invalidation; the
scheduler keeps exactly one cancellable engine timer parked at the
heap minimum.

Solver selection: ``FlowScheduler(..., solver="dense")`` or the
``OCTOPUS_FLOW_SOLVER`` environment variable (default
``"incremental"``).
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.obs.tracing import Span
    from repro.sim.engine import SimulationEngine, TimerHandle

_EPSILON_BYTES = 1e-6
#: Minimum scheduling quantum: a flow within this of completion is done.
#: Prevents Zeno loops where float residue (micro-bytes) would otherwise
#: reschedule ever-smaller wakeups without the clock advancing.
_MIN_DT = 1e-9

#: Deterministic resource identity for tie-breaking and graph bookkeeping;
#: creation order is stable across identically-seeded runs, unlike id().
_resource_ids = itertools.count()


class FlowSet:
    """Insertion-ordered set of flows (a dict-backed ordered set).

    Attach order equals ``flow.seq`` order, which gives two properties
    the scheduler leans on: iteration is deterministic across runs
    (``set`` iteration follows object addresses), and per-resource
    demand sums no longer need an O(F log F) sort per sample.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: dict = {}

    def add(self, flow) -> None:
        self._items[flow] = None

    def discard(self, flow) -> None:
        self._items.pop(flow, None)

    def __contains__(self, flow) -> bool:
        return flow in self._items

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowSet n={len(self._items)}>"


class Resource:
    """A capacitated, shareable channel (NIC direction, media channel...).

    ``capacity`` is in bytes per simulated second. ``active_count`` is the
    number of flows currently crossing the resource; the file system's
    load statistics (``NrConn`` in the paper) read this directly.
    """

    def __init__(
        self, name: str, capacity: float, congestion_overhead: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource {name!r} needs capacity > 0")
        self.name = name
        self.capacity = float(capacity)
        #: Per-extra-connection efficiency loss. Real networks lose
        #: aggregate goodput under fan-in (TCP incast, switch buffer
        #: pressure); a pure fluid model conserves it. A small positive
        #: value on network resources reproduces the paper's observed
        #: throughput decline at high degrees of parallelism.
        self.congestion_overhead = float(congestion_overhead)
        self.flows: FlowSet = FlowSet()
        self.bytes_served = 0.0
        self._rid = next(_resource_ids)

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def effective_capacity(self) -> float:
        """Capacity after congestion losses at the current concurrency."""
        penalty = 1.0 + self.congestion_overhead * max(0, len(self.flows) - 1)
        return self.capacity / penalty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Resource {self.name} cap={self.capacity:.0f}B/s active={self.active_count}>"


class Flow:
    """A transfer of ``size`` bytes across ``resources``.

    ``completed`` is an :class:`~repro.sim.events.Event` that succeeds
    with the flow when the last byte arrives (or fails if cancelled).
    """

    def __init__(
        self,
        size: float,
        resources: Sequence[Resource],
        completed: Event,
        label: str = "",
    ) -> None:
        if size < 0:
            raise SimulationError("flow size must be non-negative")
        self.size = float(size)
        self.remaining = float(size)
        # A pipeline may legitimately visit one node twice; the same
        # physical resource must only count once toward the flow's rate.
        seen: dict[int, Resource] = {}
        for resource in resources:
            seen.setdefault(id(resource), resource)
        self.resources: tuple[Resource, ...] = tuple(seen.values())
        self.completed = completed
        self.label = label
        self.rate = 0.0
        self.started_at = 0.0
        self.finished_at: float | None = None
        #: Scheduler-assigned start order; the deterministic identity used
        #: for completion ordering and trace correlation (labels may embed
        #: process-global block ids, which are not stable across runs).
        self.seq = 0
        #: Simulation time up to which ``remaining`` is materialized;
        #: progress between ``last_advanced`` and now is implied by
        #: ``rate`` and integrated only when the rate value changes.
        self.last_advanced = 0.0
        #: Invalidation token for completion-heap entries; bumped whenever
        #: the flow's scheduled finish time stops being valid.
        self._wake_token = 0
        #: Trace span covering this transfer, when observability is on.
        self.span: "Span | None" = None

    @property
    def duration(self) -> float:
        """Transfer duration in simulated seconds (valid once finished)."""
        if self.finished_at is None:
            raise SimulationError(f"flow {self.label!r} has not finished")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.label or hex(id(self))} remaining="
            f"{self.remaining:.0f}B rate={self.rate:.0f}B/s>"
        )


class DenseFlowSolver:
    """Re-fill every active flow on every change (the original behavior).

    Kept as the escape hatch (``OCTOPUS_FLOW_SOLVER=dense``) and as the
    oracle the differential tests compare the incremental solver against.
    """

    name = "dense"

    def __init__(self, scheduler: "FlowScheduler") -> None:
        self.scheduler = scheduler

    def select(
        self, seed_flows: Iterable[Flow], seed_resources: Iterable[Resource]
    ) -> list[Flow]:
        return list(self.scheduler.active)


class IncrementalFlowSolver:
    """Re-fill only the connected component touched by a change.

    Max–min filling never moves capacity between disconnected components
    of the flow↔resource graph, so flows outside the component provably
    keep their cached rates.

    Below :attr:`small_cutoff` active flows the BFS bookkeeping costs
    more than a full fill saves, so the solver falls back to filling
    everything — still exact, since the full active set is a union of
    components and filling a union fills each component independently.
    """

    name = "incremental"

    #: Hybrid threshold: with at most this many active flows, skip the
    #: component search and re-fill the whole active set.
    small_cutoff = 16

    def __init__(self, scheduler: "FlowScheduler") -> None:
        self.scheduler = scheduler

    def select(
        self, seed_flows: Iterable[Flow], seed_resources: Iterable[Resource]
    ) -> list[Flow]:
        active = self.scheduler.active
        if len(active) <= self.small_cutoff:
            return list(active)
        component: list[Flow] = []
        seen_flows: set[Flow] = set()
        seen_resources: set[int] = set()
        flow_frontier: list[Flow] = []
        resource_frontier: list[Resource] = []
        for resource in seed_resources:
            if resource._rid not in seen_resources:
                seen_resources.add(resource._rid)
                resource_frontier.append(resource)
        for flow in seed_flows:
            if flow in active and flow not in seen_flows:
                seen_flows.add(flow)
                component.append(flow)
                flow_frontier.append(flow)
        while flow_frontier or resource_frontier:
            while flow_frontier:
                flow = flow_frontier.pop()
                for resource in flow.resources:
                    if resource._rid not in seen_resources:
                        seen_resources.add(resource._rid)
                        resource_frontier.append(resource)
            while resource_frontier:
                resource = resource_frontier.pop()
                for flow in resource.flows:
                    if flow not in seen_flows and flow in active:
                        seen_flows.add(flow)
                        component.append(flow)
                        flow_frontier.append(flow)
        return component


SOLVERS = {
    DenseFlowSolver.name: DenseFlowSolver,
    IncrementalFlowSolver.name: IncrementalFlowSolver,
}


def _seq_key(flow: Flow) -> int:
    return flow.seq


class FlowScheduler:
    """Runs the fluid model on top of a :class:`SimulationEngine`."""

    def __init__(
        self,
        engine: "SimulationEngine",
        obs: "Observability | None" = None,
        solver: str | None = None,
    ) -> None:
        self.engine = engine
        if obs is None:
            from repro.obs import Observability

            obs = Observability()  # disabled no-op bundle
        self.obs = obs
        self.active: FlowSet = FlowSet()
        self.total_flows_started = 0
        self.total_bytes_completed = 0.0
        #: Rate assignments performed by progressive filling; the perf
        #: tests use this to show the incremental solver does less work.
        self.rate_computations = 0
        #: Pending completions: ``(finish_time, seq, token, flow)``.
        #: Entries whose token no longer matches ``flow._wake_token`` are
        #: stale and skipped on pop (token-bump lazy invalidation).
        self._completions: list[tuple[float, int, int, Flow]] = []
        self._wake_handle: "TimerHandle | None" = None
        self._wake_time = math.inf
        name = solver or os.environ.get("OCTOPUS_FLOW_SOLVER", "incremental")
        try:
            solver_cls = SOLVERS[name]
        except KeyError:
            raise SimulationError(
                f"unknown flow solver {name!r}; options: {sorted(SOLVERS)}"
            ) from None
        self.solver = solver_cls(self)
        self.solver_name = name

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        size: float,
        resources: Iterable[Resource],
        label: str = "",
        parent: "Span | None" = None,
    ) -> Flow:
        """Begin transferring ``size`` bytes over ``resources``.

        Returns the flow; wait on ``flow.completed`` for the finish time.
        A zero-byte flow completes immediately. With observability on,
        the transfer is covered by a ``flow.transfer`` span attached as
        ``flow.span``; pass ``parent`` to link it to the client operation
        that initiated it.
        """
        flow = Flow(size, list(resources), self.engine.event(), label=label)
        now = self.engine.now
        flow.started_at = now
        flow.last_advanced = now
        self.total_flows_started += 1
        flow.seq = self.total_flows_started
        obs = self.obs
        if obs.enabled:
            flow.span = obs.tracer.start_span(
                "flow.transfer",
                parent=parent,
                size=flow.size,
                resources=len(flow.resources),
                # Which channels the transfer crosses (NIC directions,
                # rack uplinks, media read/write channels) — the trace
                # analyzer's straggler view points at the shared hop.
                path=[r.name for r in flow.resources],
            )
            obs.metrics.counter("flows_started_total").inc()
        if flow.remaining <= _EPSILON_BYTES:
            flow.finished_at = now
            if flow.span is not None:
                flow.span.end("ok")
                obs.metrics.counter("flows_completed_total").inc()
            flow.completed.succeed(flow)
            return flow
        self.active.add(flow)
        for resource in flow.resources:
            resource.flows.add(flow)
        self._reallocate(seed_flows=(flow,))
        return flow

    def cancel_flow(self, flow: Flow, exception: BaseException) -> None:
        """Abort an in-flight flow; its waiter sees ``exception``."""
        if flow not in self.active:
            return
        self._materialize(flow)
        self._detach(flow)
        flow.finished_at = self.engine.now
        if flow.span is not None:
            flow.span.end("cancelled", transferred=flow.size - flow.remaining)
            self.obs.metrics.counter("flows_cancelled_total").inc()
        flow.completed.fail(exception)
        self._reallocate(seed_resources=flow.resources)

    def transfer(
        self,
        size: float,
        resources: Iterable[Resource],
        label: str = "",
        parent: "Span | None" = None,
    ) -> Event:
        """Convenience: start a flow and return its completion event."""
        return self.start_flow(
            size, resources, label=label, parent=parent
        ).completed

    def refresh(self, resources: Iterable[Resource] | None = None) -> None:
        """Re-share bandwidth after an external capacity change.

        Fault injection (medium degradation, NIC rate caps) rewrites
        ``Resource.capacity`` while flows are in flight; calling this
        recomputes the max–min allocation under the new capacities.
        Pass the changed ``resources`` as a hint so the incremental
        solver only revisits their connected components; with no hint,
        every component is recomputed.
        """
        if resources is None:
            self._reallocate(seed_flows=self.active)
        else:
            self._reallocate(seed_resources=resources)

    def set_capacity(self, resource: Resource, capacity: float) -> None:
        """Change one resource's capacity and re-share immediately."""
        if capacity <= 0:
            raise SimulationError(
                f"resource {resource.name!r} needs capacity > 0"
            )
        resource.capacity = float(capacity)
        self._reallocate(seed_resources=(resource,))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _detach(self, flow: Flow) -> None:
        self.active.discard(flow)
        flow._wake_token += 1
        for resource in flow.resources:
            resource.flows.discard(flow)

    def _materialize(self, flow: Flow) -> None:
        """Integrate the flow's progress from ``last_advanced`` to now.

        Called exactly when the flow's rate value changes (or it leaves
        the system), so both solvers accumulate the same float chunks at
        the same simulation times — the key to bit-identical results.
        """
        now = self.engine.now
        elapsed = now - flow.last_advanced
        flow.last_advanced = now
        if elapsed <= 0:
            return
        moved = flow.rate * elapsed
        flow.remaining = max(0.0, flow.remaining - moved)
        share = moved / max(1, len(flow.resources))
        for resource in flow.resources:
            resource.bytes_served += share

    def _reallocate(
        self,
        seed_flows: Iterable[Flow] = (),
        seed_resources: Iterable[Resource] = (),
    ) -> None:
        """Recompute rates for the touched component(s); cascade finishes.

        Flows whose new rate puts them within :data:`_MIN_DT` of
        completion finish immediately (in ``seq`` order), and their
        resources seed another round, mirroring the dense solver's
        finish-then-refill recursion.
        """
        while True:
            fill = self.solver.select(seed_flows, seed_resources)
            changed = self._fill_rates(fill)
            due: list[Flow] = []
            for flow in changed:
                rate = flow.rate
                if (
                    flow.remaining <= _EPSILON_BYTES
                    or rate == math.inf
                    or (rate > 0 and flow.remaining / rate <= _MIN_DT)
                ):
                    due.append(flow)
                else:
                    flow._wake_token += 1
                    if rate > 0:
                        heapq.heappush(
                            self._completions,
                            (
                                self.engine.now + flow.remaining / rate,
                                flow.seq,
                                flow._wake_token,
                                flow,
                            ),
                        )
                    # A zero-rate flow waits with no completion entry; if
                    # nothing else is in flight the wakeup check below
                    # reports the deadlock.
            if not due:
                break
            due.sort(key=_seq_key)
            touched: dict[int, Resource] = {}
            for flow in due:
                self._finish_flow(flow)
                for resource in flow.resources:
                    touched[resource._rid] = resource
            seed_flows = ()
            seed_resources = list(touched.values())
        self._schedule_wakeup()
        if self.obs.enabled:
            self._sample_utilization()

    def _fill_rates(self, fill_flows: Iterable[Flow]) -> list[Flow]:
        """Progressive filling over ``fill_flows``; returns rate-changed flows.

        Bottleneck selection uses a lazily-verified candidate heap keyed
        ``(share, name, rid)``: a fresh entry is pushed every time a
        resource's residual capacity or pending count changes, and an
        entry is trusted on pop only if it still matches the live value.
        This preserves the exact deterministic min-by-(share, name)
        choice of the original O(rounds × resources) scan.
        """
        changed: list[Flow] = []
        unassigned: set[Flow] = set()
        remaining_cap: dict[int, float] = {}
        pending_count: dict[int, int] = {}
        resources: dict[int, Resource] = {}
        free_flows: list[Flow] = []
        for flow in fill_flows:
            if not flow.resources:
                free_flows.append(flow)
                continue
            unassigned.add(flow)
            for resource in flow.resources:
                rid = resource._rid
                if rid in resources:
                    pending_count[rid] += 1
                else:
                    resources[rid] = resource
                    remaining_cap[rid] = resource.effective_capacity()
                    pending_count[rid] = 1
        # Flows crossing no resources are effectively local no-cost copies.
        for flow in free_flows:
            self._set_rate(flow, math.inf, changed)
        candidates = [
            (remaining_cap[rid] / pending_count[rid], resource.name, rid)
            for rid, resource in resources.items()
        ]
        heapq.heapify(candidates)
        while unassigned:
            while candidates:
                share, _name, rid = heapq.heappop(candidates)
                count = pending_count[rid]
                if count > 0 and remaining_cap[rid] / count == share:
                    break
            else:
                raise SimulationError("flow without any capacitated resource")
            bottleneck = resources[rid]
            frozen = [flow for flow in bottleneck.flows if flow in unassigned]
            for flow in frozen:
                self._set_rate(flow, share, changed)
                unassigned.discard(flow)
                for resource in flow.resources:
                    other = resource._rid
                    if other == rid:
                        continue
                    remaining_cap[other] -= share
                    count = pending_count[other] - 1
                    pending_count[other] = count
                    if count > 0:
                        heapq.heappush(
                            candidates,
                            (remaining_cap[other] / count, resource.name, other),
                        )
            pending_count[rid] = 0
        return changed

    def _set_rate(self, flow: Flow, rate: float, changed: list[Flow]) -> None:
        self.rate_computations += 1
        if rate == flow.rate:
            return  # cached rate still exact; no materialization point
        self._materialize(flow)
        flow.rate = rate
        changed.append(flow)

    def _finish_flow(self, flow: Flow) -> None:
        self._materialize(flow)
        self._detach(flow)
        flow.remaining = 0.0
        flow.finished_at = self.engine.now
        self.total_bytes_completed += flow.size
        if flow.span is not None:
            flow.span.end("ok")
            self.obs.metrics.counter("flows_completed_total").inc()
            self.obs.metrics.counter("flow_bytes_total").inc(flow.size)
        flow.completed.succeed(flow)

    def _next_completion(self) -> float | None:
        """Earliest valid completion time; purges stale heap heads."""
        heap = self._completions
        while heap:
            _when, _seq, token, flow = heap[0]
            if token != flow._wake_token or flow not in self.active:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    def _schedule_wakeup(self) -> None:
        when = self._next_completion()
        if when is None:
            if self.active:
                raise SimulationError("active flow has zero rate; deadlock")
            if self._wake_handle is not None:
                self._wake_handle.cancel()
                self._wake_handle = None
                self._wake_time = math.inf
            return
        if self._wake_handle is not None:
            if self._wake_time == when:
                return  # the parked timer is already right
            self._wake_handle.cancel()
        self._wake_handle = self.engine.call_at(when, self._on_wakeup)
        self._wake_time = when

    def _on_wakeup(self) -> None:
        self._wake_handle = None
        self._wake_time = math.inf
        now = self.engine.now
        heap = self._completions
        due: list[Flow] = []
        while heap:
            when, _seq, token, flow = heap[0]
            if token != flow._wake_token or flow not in self.active:
                heapq.heappop(heap)
                continue
            if when > now:
                break
            heapq.heappop(heap)
            due.append(flow)  # heap order is (time, seq): ties resolve by seq
        if not due:
            self._schedule_wakeup()
            return
        touched: dict[int, Resource] = {}
        for flow in due:
            self._finish_flow(flow)
            for resource in flow.resources:
                touched[resource._rid] = resource
        self._reallocate(seed_resources=list(touched.values()))

    def _sample_utilization(self) -> None:
        """Record per-resource utilization after a rate change.

        One sample per resource currently crossed by an active flow:
        the demanded rate as a fraction of effective capacity, stamped
        with the simulation time. Resources are visited in name order so
        identical runs emit identical series; per-resource demand sums
        in attach (= seq) order because :class:`FlowSet` preserves it.
        """
        metrics = self.obs.metrics
        metrics.gauge("flows_active").set(len(self.active))
        involved: dict[str, Resource] = {}
        for flow in self.active:
            for resource in flow.resources:
                involved[resource.name] = resource
        for name in sorted(involved):
            resource = involved[name]
            capacity = resource.effective_capacity()
            demand = 0.0
            for flow in resource.flows:
                rate = flow.rate
                if rate != math.inf:
                    demand += rate
            metrics.timeseries("resource_utilization", resource=name).sample(
                demand / capacity if capacity > 0 else 0.0
            )
