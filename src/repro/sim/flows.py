"""Fluid-flow bandwidth model with max–min fair sharing.

Data transfers in the simulated cluster are *flows*: a number of bytes
moving across a set of capacitated resources (NIC ingress/egress, rack
uplinks, storage-media read/write channels). At any instant, every
active flow receives a transfer rate computed by progressive filling
(max–min fairness): the most contended resource caps the rates of the
flows crossing it, those flows are frozen, the residual capacity is
redistributed, and so on.

Whenever the set of active flows changes, the scheduler advances each
flow's progress at its old rate, recomputes the allocation, and schedules
the next flow completion. This flow-level ("fluid") approximation is the
standard technique for simulating bandwidth sharing without packet-level
detail, and it reproduces the concurrency phenomena the paper's
evaluation depends on: a medium's throughput dividing among concurrent
streams, NIC congestion growing with the degree of parallelism, and a
pipeline's rate being set by its slowest stage (a pipeline write is a
single flow crossing all stage resources).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.obs.tracing import Span
    from repro.sim.engine import SimulationEngine

_EPSILON_BYTES = 1e-6
#: Minimum scheduling quantum: a flow within this of completion is done.
#: Prevents Zeno loops where float residue (micro-bytes) would otherwise
#: reschedule ever-smaller wakeups without the clock advancing.
_MIN_DT = 1e-9


class Resource:
    """A capacitated, shareable channel (NIC direction, media channel...).

    ``capacity`` is in bytes per simulated second. ``active_count`` is the
    number of flows currently crossing the resource; the file system's
    load statistics (``NrConn`` in the paper) read this directly.
    """

    def __init__(
        self, name: str, capacity: float, congestion_overhead: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource {name!r} needs capacity > 0")
        self.name = name
        self.capacity = float(capacity)
        #: Per-extra-connection efficiency loss. Real networks lose
        #: aggregate goodput under fan-in (TCP incast, switch buffer
        #: pressure); a pure fluid model conserves it. A small positive
        #: value on network resources reproduces the paper's observed
        #: throughput decline at high degrees of parallelism.
        self.congestion_overhead = float(congestion_overhead)
        self.flows: set["Flow"] = set()
        self.bytes_served = 0.0

    @property
    def active_count(self) -> int:
        return len(self.flows)

    def effective_capacity(self) -> float:
        """Capacity after congestion losses at the current concurrency."""
        penalty = 1.0 + self.congestion_overhead * max(0, len(self.flows) - 1)
        return self.capacity / penalty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Resource {self.name} cap={self.capacity:.0f}B/s active={self.active_count}>"


class Flow:
    """A transfer of ``size`` bytes across ``resources``.

    ``completed`` is an :class:`~repro.sim.events.Event` that succeeds
    with the flow when the last byte arrives (or fails if cancelled).
    """

    def __init__(
        self,
        size: float,
        resources: Sequence[Resource],
        completed: Event,
        label: str = "",
    ) -> None:
        if size < 0:
            raise SimulationError("flow size must be non-negative")
        self.size = float(size)
        self.remaining = float(size)
        # A pipeline may legitimately visit one node twice; the same
        # physical resource must only count once toward the flow's rate.
        seen: dict[int, Resource] = {}
        for resource in resources:
            seen.setdefault(id(resource), resource)
        self.resources: tuple[Resource, ...] = tuple(seen.values())
        self.completed = completed
        self.label = label
        self.rate = 0.0
        self.started_at = 0.0
        self.finished_at: float | None = None
        #: Scheduler-assigned start order; the deterministic identity used
        #: for completion ordering and trace correlation (labels may embed
        #: process-global block ids, which are not stable across runs).
        self.seq = 0
        #: Trace span covering this transfer, when observability is on.
        self.span: "Span | None" = None

    @property
    def duration(self) -> float:
        """Transfer duration in simulated seconds (valid once finished)."""
        if self.finished_at is None:
            raise SimulationError(f"flow {self.label!r} has not finished")
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.label or hex(id(self))} remaining="
            f"{self.remaining:.0f}B rate={self.rate:.0f}B/s>"
        )


class FlowScheduler:
    """Runs the fluid model on top of a :class:`SimulationEngine`."""

    def __init__(
        self, engine: "SimulationEngine", obs: "Observability | None" = None
    ) -> None:
        self.engine = engine
        if obs is None:
            from repro.obs import Observability

            obs = Observability()  # disabled no-op bundle
        self.obs = obs
        self.active: set[Flow] = set()
        self._last_update = engine.now
        self._wake_version = 0
        self.total_flows_started = 0
        self.total_bytes_completed = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        size: float,
        resources: Iterable[Resource],
        label: str = "",
        parent: "Span | None" = None,
    ) -> Flow:
        """Begin transferring ``size`` bytes over ``resources``.

        Returns the flow; wait on ``flow.completed`` for the finish time.
        A zero-byte flow completes immediately. With observability on,
        the transfer is covered by a ``flow.transfer`` span attached as
        ``flow.span``; pass ``parent`` to link it to the client operation
        that initiated it.
        """
        flow = Flow(size, list(resources), self.engine.event(), label=label)
        flow.started_at = self.engine.now
        self.total_flows_started += 1
        flow.seq = self.total_flows_started
        obs = self.obs
        if obs.enabled:
            flow.span = obs.tracer.start_span(
                "flow.transfer",
                parent=parent,
                size=flow.size,
                resources=len(flow.resources),
            )
            obs.metrics.counter("flows_started_total").inc()
        if flow.remaining <= _EPSILON_BYTES:
            flow.finished_at = self.engine.now
            if flow.span is not None:
                flow.span.end("ok")
                obs.metrics.counter("flows_completed_total").inc()
            flow.completed.succeed(flow)
            return flow
        self._advance_progress()
        self.active.add(flow)
        for resource in flow.resources:
            resource.flows.add(flow)
        self._reallocate()
        return flow

    def cancel_flow(self, flow: Flow, exception: BaseException) -> None:
        """Abort an in-flight flow; its waiter sees ``exception``."""
        if flow not in self.active:
            return
        self._advance_progress()
        self._detach(flow)
        flow.finished_at = self.engine.now
        if flow.span is not None:
            flow.span.end("cancelled", transferred=flow.size - flow.remaining)
            self.obs.metrics.counter("flows_cancelled_total").inc()
        flow.completed.fail(exception)
        self._reallocate()

    def transfer(
        self,
        size: float,
        resources: Iterable[Resource],
        label: str = "",
        parent: "Span | None" = None,
    ) -> Event:
        """Convenience: start a flow and return its completion event."""
        return self.start_flow(
            size, resources, label=label, parent=parent
        ).completed

    def refresh(self) -> None:
        """Re-share bandwidth after an external capacity change.

        Fault injection (medium degradation, NIC rate caps) rewrites
        ``Resource.capacity`` while flows are in flight; calling this
        integrates progress at the old rates and recomputes the max–min
        allocation under the new capacities.
        """
        self._advance_progress()
        self._reallocate()

    def set_capacity(self, resource: Resource, capacity: float) -> None:
        """Change one resource's capacity and re-share immediately."""
        if capacity <= 0:
            raise SimulationError(
                f"resource {resource.name!r} needs capacity > 0"
            )
        self._advance_progress()
        resource.capacity = float(capacity)
        self._reallocate()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _detach(self, flow: Flow) -> None:
        self.active.discard(flow)
        for resource in flow.resources:
            resource.flows.discard(flow)

    def _advance_progress(self) -> None:
        """Integrate every active flow forward at its current rate."""
        now = self.engine.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0:
            return
        for flow in self.active:
            moved = flow.rate * elapsed
            flow.remaining = max(0.0, flow.remaining - moved)
            share = moved / max(1, len(flow.resources))
            for resource in flow.resources:
                resource.bytes_served += share

    def _reallocate(self) -> None:
        """Recompute max–min fair rates and schedule the next completion."""
        self._assign_rates()
        self._finish_done_flows()
        self._schedule_wakeup()
        if self.obs.enabled:
            self._sample_utilization()

    def _sample_utilization(self) -> None:
        """Record per-resource utilization after a rate change.

        One sample per resource currently crossed by an active flow:
        the demanded rate as a fraction of effective capacity, stamped
        with the simulation time. Resources are visited in name order so
        identical runs emit identical series.
        """
        metrics = self.obs.metrics
        metrics.gauge("flows_active").set(len(self.active))
        involved: dict[str, Resource] = {}
        for flow in self.active:
            for resource in flow.resources:
                involved[resource.name] = resource
        for name in sorted(involved):
            resource = involved[name]
            capacity = resource.effective_capacity()
            # Sum in seq order: float addition is not associative, and
            # set order varies run to run.
            demand = sum(
                flow.rate
                for flow in sorted(resource.flows, key=lambda f: f.seq)
                if flow.rate != math.inf
            )
            metrics.timeseries("resource_utilization", resource=name).sample(
                demand / capacity if capacity > 0 else 0.0
            )

    def _assign_rates(self) -> None:
        unassigned = set(self.active)
        if not unassigned:
            return
        remaining_cap: dict[int, float] = {}
        pending_count: dict[int, int] = {}
        resources: dict[int, Resource] = {}
        for flow in unassigned:
            for resource in flow.resources:
                key = id(resource)
                resources[key] = resource
                remaining_cap.setdefault(key, resource.effective_capacity())
                pending_count[key] = pending_count.get(key, 0) + 1
        # Flows crossing no resources are effectively local no-cost copies.
        for flow in [f for f in unassigned if not f.resources]:
            flow.rate = math.inf
            unassigned.discard(flow)
        while unassigned:
            bottleneck_key = None
            bottleneck_share = math.inf
            for key, count in pending_count.items():
                if count <= 0:
                    continue
                share = remaining_cap[key] / count
                # Deterministic tie-break on resource name.
                if share < bottleneck_share or (
                    share == bottleneck_share
                    and bottleneck_key is not None
                    and resources[key].name < resources[bottleneck_key].name
                ):
                    bottleneck_share = share
                    bottleneck_key = key
            if bottleneck_key is None:
                raise SimulationError("flow without any capacitated resource")
            frozen = [
                flow
                for flow in resources[bottleneck_key].flows
                if flow in unassigned
            ]
            for flow in frozen:
                flow.rate = bottleneck_share
                unassigned.discard(flow)
                for resource in flow.resources:
                    key = id(resource)
                    if key == bottleneck_key:
                        continue
                    remaining_cap[key] -= bottleneck_share
                    pending_count[key] -= 1
            pending_count[bottleneck_key] = 0

    def _finish_done_flows(self) -> None:
        # Sorted by start order: simultaneous completions must resolve
        # identically across runs (set order follows object ids), both
        # for downstream event scheduling and for trace emission order.
        done = sorted(
            (
                flow
                for flow in self.active
                if flow.remaining <= _EPSILON_BYTES
                or flow.rate == math.inf
                or (flow.rate > 0 and flow.remaining / flow.rate <= _MIN_DT)
            ),
            key=lambda flow: flow.seq,
        )
        obs = self.obs
        for flow in done:
            self._detach(flow)
            flow.remaining = 0.0
            flow.finished_at = self.engine.now
            self.total_bytes_completed += flow.size
            if flow.span is not None:
                flow.span.end("ok")
                obs.metrics.counter("flows_completed_total").inc()
                obs.metrics.counter("flow_bytes_total").inc(flow.size)
            flow.completed.succeed(flow)
        if done:
            self._assign_rates()
            self._finish_done_flows()

    def _schedule_wakeup(self) -> None:
        self._wake_version += 1
        if not self.active:
            return
        horizon = min(
            flow.remaining / flow.rate if flow.rate > 0 else math.inf
            for flow in self.active
        )
        if horizon is math.inf:
            raise SimulationError("active flow has zero rate; deadlock")
        version = self._wake_version
        self.engine.call_in(max(horizon, _MIN_DT), lambda: self._on_wakeup(version))

    def _on_wakeup(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer allocation
        self._advance_progress()
        self._reallocate()
