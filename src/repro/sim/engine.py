"""The discrete-event simulation engine.

The engine keeps a simulated clock and a priority queue of scheduled
callbacks. *Processes* are Python generators that ``yield`` events
(:class:`~repro.sim.events.Event` subclasses); the engine resumes a
process when the event it waits on triggers, passing the event's value
back into the generator (or throwing its exception).

The engine is single-threaded and fully deterministic: ties in the event
heap are broken by insertion order.

Scheduling is slot-based: every heap entry is a :class:`TimerHandle`
holding a ``(fn, arg)`` pair, so dispatching an event callback does not
allocate a closure, and any scheduled callback can be cancelled before
it fires (:meth:`TimerHandle.cancel`). Cancelled entries are skipped
when popped and compacted away wholesale when they start to dominate
the heap, so a hot rescheduling path (e.g. the flow scheduler moving
its wakeup on every allocation change) neither runs stale callbacks nor
leaks heap memory.

Example
-------
>>> engine = SimulationEngine()
>>> def hello(engine):
...     yield engine.timeout(5.0)
...     return engine.now
>>> proc = engine.process(hello(engine))
>>> engine.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

#: Sentinel: the scheduled callback takes no argument.
_NO_ARG = object()

#: Compaction policy: rebuild the heap once it holds more than this many
#: cancelled entries *and* they outnumber the live ones.
_COMPACT_MIN_CANCELLED = 64


class TimerHandle:
    """One scheduled callback; cancellable until it fires.

    Returned by :meth:`SimulationEngine.call_at` / ``call_in``. Calling
    :meth:`cancel` guarantees the callback never runs; the heap entry is
    dropped lazily (on pop, or during compaction).
    """

    __slots__ = ("when", "fn", "arg", "cancelled", "_engine")

    def __init__(
        self,
        when: float,
        fn: Callable[..., None],
        arg: Any,
        engine: "SimulationEngine",
    ) -> None:
        self.when = when
        self.fn = fn
        self.arg = arg
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent."""
        if not self.cancelled:
            self.cancelled = True
            self._engine._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<TimerHandle at={self.when} {state}>"


class Process(Event):
    """A running generator; it is itself an event that triggers on return.

    The generator's ``return`` value becomes the process's event value.
    An uncaught exception inside the generator fails the process event,
    propagating to any process waiting on it.
    """

    def __init__(
        self,
        engine: "SimulationEngine",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(engine)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Kick off the generator on the next engine step at the current time.
        bootstrap = Event(engine)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        try:
            if event.ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event.exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            self.fail(exc)
            for listener in self.engine.crash_listeners:
                listener(self, exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
            )
            return
        target.add_callback(self._resume)


class SimulationEngine:
    """Simulated clock plus event heap; the heart of the substrate."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, TimerHandle]] = []
        self._sequence = 0
        self._cancelled = 0
        #: Total callbacks executed; the wall-clock benchmarks divide
        #: this by elapsed real time to report simulated events/second.
        self.events_processed = 0
        #: Called as ``listener(process, exc)`` whenever a process
        #: generator raises instead of returning — the flight recorder
        #: registers here so an unhandled crash can open an incident.
        #: Empty list = one truthiness check on the failure path only.
        self.crash_listeners: list[Callable] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event the caller will settle manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a process from a generator; returns the waitable process."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling internals (used by Event/Timeout)
    # ------------------------------------------------------------------
    def _push(self, when: float, fn: Callable[..., None], arg: Any) -> TimerHandle:
        self._sequence += 1
        handle = TimerHandle(when, fn, arg, self)
        heapq.heappush(self._heap, (when, self._sequence, handle))
        return handle

    def call_at(
        self, when: float, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> TimerHandle:
        """Schedule ``callback`` at absolute simulated time ``when``.

        Returns a :class:`TimerHandle`; cancel it to drop the callback.
        Pass ``arg`` to have ``callback(arg)`` invoked without the engine
        allocating a wrapper closure.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        return self._push(when, callback, arg)

    def call_in(
        self, delay: float, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> TimerHandle:
        """Schedule a callback ``delay`` seconds from now."""
        return self.call_at(self._now + delay, callback, arg)

    def _schedule_timeout(
        self, event: Timeout, delay: float, value: Any
    ) -> TimerHandle:
        # Slot-based: succeed(value) needs no lambda wrapper.
        return self._push(self._now + delay, event.succeed, value)

    def _schedule_callbacks(self, event: Event) -> None:
        callbacks = event.callbacks
        if not callbacks:
            return
        event.callbacks = None
        now = self._now
        for callback in callbacks:
            self._push(now, callback, event)

    def _schedule_single_callback(
        self, event: Event, callback: Callable[[Event], None]
    ) -> None:
        self._push(self._now, callback, event)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortized O(n))."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def _next_event_time(self) -> float | None:
        """Time of the next live entry; pops cancelled heads on the way."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance to the next scheduled callback and run it."""
        if self._next_event_time() is None:
            raise SimulationError("step() called on an empty event heap")
        when, _seq, handle = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        arg = handle.arg
        if arg is _NO_ARG:
            handle.fn()
        else:
            handle.fn(arg)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the event heap drains.
        * ``until=<float>`` — run until simulated time reaches the value.
        * ``until=<Event>`` — run until the event triggers, then return
          its value (raising its exception if it failed).
        """
        if isinstance(until, Event):
            while not until.triggered:
                if self._next_event_time() is None:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                self.step()
            return until.value
        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError("run(until=...) target is in the past")
            while True:
                when = self._next_event_time()
                if when is None or when > deadline:
                    break
                self.step()
            self._now = deadline
            return None
        while self._next_event_time() is not None:
            self.step()
        return None

    def run_process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Any:
        """Start a process and run the simulation until it completes."""
        return self.run(self.process(generator, name=name))
