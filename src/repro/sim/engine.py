"""The discrete-event simulation engine.

The engine keeps a simulated clock and a priority queue of scheduled
callbacks. *Processes* are Python generators that ``yield`` events
(:class:`~repro.sim.events.Event` subclasses); the engine resumes a
process when the event it waits on triggers, passing the event's value
back into the generator (or throwing its exception).

The engine is single-threaded and fully deterministic: ties in the event
heap are broken by insertion order.

Example
-------
>>> engine = SimulationEngine()
>>> def hello(engine):
...     yield engine.timeout(5.0)
...     return engine.now
>>> proc = engine.process(hello(engine))
>>> engine.run()
>>> proc.value
5.0
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout


class Process(Event):
    """A running generator; it is itself an event that triggers on return.

    The generator's ``return`` value becomes the process's event value.
    An uncaught exception inside the generator fails the process event,
    propagating to any process waiting on it.
    """

    def __init__(
        self,
        engine: "SimulationEngine",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(engine)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Kick off the generator on the next engine step at the current time.
        bootstrap = Event(engine)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        try:
            if event.ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event.exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crashed
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
            )
            return
        target.add_callback(self._resume)


class SimulationEngine:
    """Simulated clock plus event heap; the heart of the substrate."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event the caller will settle manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a process from a generator; returns the waitable process."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling internals (used by Event/Timeout)
    # ------------------------------------------------------------------
    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule a bare callback at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, callback))

    def call_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule a bare callback ``delay`` seconds from now."""
        self.call_at(self._now + delay, callback)

    def _schedule_timeout(self, event: Timeout, delay: float, value: Any) -> None:
        self.call_at(self._now + delay, lambda: event.succeed(value))

    def _schedule_callbacks(self, event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            self._sequence += 1
            heapq.heappush(
                self._heap,
                (self._now, self._sequence, lambda cb=callback: cb(event)),
            )

    def _schedule_single_callback(
        self, event: Event, callback: Callable[[Event], None]
    ) -> None:
        self._sequence += 1
        heapq.heappush(
            self._heap, (self._now, self._sequence, lambda: callback(event))
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance to the next scheduled callback and run it."""
        if not self._heap:
            raise SimulationError("step() called on an empty event heap")
        when, _seq, callback = heapq.heappop(self._heap)
        self._now = when
        callback()

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the event heap drains.
        * ``until=<float>`` — run until simulated time reaches the value.
        * ``until=<Event>`` — run until the event triggers, then return
          its value (raising its exception if it failed).
        """
        if isinstance(until, Event):
            while not until.triggered:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)"
                    )
                self.step()
            return until.value
        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError("run(until=...) target is in the past")
            while self._heap and self._heap[0][0] <= deadline:
                self.step()
            self._now = deadline
            return None
        while self._heap:
            self.step()
        return None

    def run_process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Any:
        """Start a process and run the simulation until it completes."""
        return self.run(self.process(generator, name=name))
