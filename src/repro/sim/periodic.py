"""A stoppable periodic callback process for the simulation engine.

The background daemons in :class:`~repro.fs.system.OctopusFileSystem`
(heartbeats, the replication monitor) all share one shape: wait an
interval, do work, repeat while a flag is set. The tiering engine needs
the same shape, so the pattern is factored here once.

The loop *waits first* (``initial_delay``, defaulting to the interval,
lets the first firing land off the shared interval grid so co-scheduled
daemons don't all tick at the same instants): starting a periodic
process never fires the callback at the current instant, so attaching
one to an otherwise idle
engine and draining it with a bare ``engine.run()`` is safe as long as
:meth:`PeriodicProcess.stop` is called first (same contract as
``stop_services``). The running flag is re-checked after every wait, so
a ``stop()`` issued while the process sleeps cancels the next firing
rather than squeezing in one last callback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Process, SimulationEngine


class PeriodicProcess:
    """Run ``callback()`` every ``interval`` simulated seconds."""

    def __init__(
        self,
        engine: "SimulationEngine",
        callback: Callable[[], object],
        interval: float,
        name: str = "periodic",
        initial_delay: float | None = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("periodic interval must be positive")
        if initial_delay is not None and initial_delay <= 0:
            raise ConfigurationError("initial_delay must be positive")
        self.engine = engine
        self.callback = callback
        self.interval = float(interval)
        self.initial_delay = (
            float(initial_delay) if initial_delay is not None
            else float(interval)
        )
        self.name = name
        self.ticks = 0
        self.process: "Process | None" = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "PeriodicProcess":
        if self._running:
            raise ConfigurationError(f"periodic process {self.name!r} already running")
        self._running = True
        self.process = self.engine.process(self._loop(), name=self.name)
        return self

    def stop(self) -> None:
        self._running = False

    def _loop(self) -> Generator:
        wait = self.initial_delay
        while self._running:
            yield self.engine.timeout(wait)
            wait = self.interval
            if not self._running:
                return
            self.callback()
            self.ticks += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return f"<PeriodicProcess {self.name!r} every {self.interval}s {state}>"
